//! Edge-list accumulation and CSR construction.

use crate::csr::Graph;
use crate::types::{GraphError, Vertex};
use crate::weights::WeightModel;

/// What to do when the same `(source, target)` pair is added twice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DuplicatePolicy {
    /// Keep the first occurrence (default; matches SNAP loader behaviour).
    #[default]
    KeepFirst,
    /// Keep the occurrence with the largest probability.
    KeepMax,
    /// Combine as independent chances: `1 − (1−p₁)(1−p₂)`.
    NoisyOr,
}

/// Accumulates edges and produces a validated [`Graph`].
///
/// Construction is O(m log m) (one sort) plus two counting passes; peak
/// transient memory is one `(u32, u32, f32)` triple per edge.
///
/// ```
/// use ripples_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1, 0.5).unwrap();
/// b.add_undirected(1, 2, 0.25).unwrap();
/// let g = b.build().unwrap();
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.edge_prob(0, 1), Some(0.5));
/// assert!(g.has_edge(2, 1));
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_vertices: u32,
    edges: Vec<(Vertex, Vertex, f32)>,
    duplicate_policy: DuplicatePolicy,
    drop_self_loops: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_vertices` vertices.
    #[must_use]
    pub fn new(num_vertices: u32) -> Self {
        Self {
            num_vertices,
            edges: Vec::new(),
            duplicate_policy: DuplicatePolicy::default(),
            drop_self_loops: true,
        }
    }

    /// Pre-allocates room for `additional` more edges.
    pub fn reserve(&mut self, additional: usize) {
        self.edges.reserve(additional);
    }

    /// Sets the duplicate-edge policy (default: keep first).
    #[must_use]
    pub fn duplicate_policy(mut self, policy: DuplicatePolicy) -> Self {
        self.duplicate_policy = policy;
        self
    }

    /// Sets whether self-loops are silently dropped (default: true).
    /// Self-loops never affect influence spread — a vertex cannot
    /// re-activate itself — so dropping them is semantics-preserving.
    #[must_use]
    pub fn keep_self_loops(mut self) -> Self {
        self.drop_self_loops = false;
        self
    }

    /// Number of edges currently buffered (before dedup).
    #[must_use]
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a directed edge with an explicit activation probability.
    pub fn add_edge(
        &mut self,
        source: Vertex,
        target: Vertex,
        prob: f32,
    ) -> Result<(), GraphError> {
        if source >= self.num_vertices {
            return Err(GraphError::VertexOutOfRange {
                vertex: source,
                num_vertices: self.num_vertices,
            });
        }
        if target >= self.num_vertices {
            return Err(GraphError::VertexOutOfRange {
                vertex: target,
                num_vertices: self.num_vertices,
            });
        }
        if !prob.is_finite() || !(0.0..=1.0).contains(&prob) {
            return Err(GraphError::InvalidProbability { value: prob });
        }
        if self.drop_self_loops && source == target {
            return Ok(());
        }
        self.edges.push((source, target, prob));
        Ok(())
    }

    /// Adds a directed edge with a placeholder probability of 1.0, to be
    /// overwritten later by [`GraphBuilder::assign_weights`].
    pub fn add_arc(&mut self, source: Vertex, target: Vertex) -> Result<(), GraphError> {
        self.add_edge(source, target, 1.0)
    }

    /// Adds both directions of an undirected edge.
    pub fn add_undirected(&mut self, a: Vertex, b: Vertex, prob: f32) -> Result<(), GraphError> {
        self.add_edge(a, b, prob)?;
        self.add_edge(b, a, prob)
    }

    /// Overwrites every buffered probability according to `model`.
    ///
    /// Weight assignment is deterministic given the model (and its seed) and
    /// the *final sorted edge order*, so identical edge sets produce
    /// identical weights regardless of insertion order; it therefore runs on
    /// the deduplicated, sorted list inside [`GraphBuilder::build`]. Calling
    /// this method records the model to apply.
    #[must_use]
    pub fn assign_weights(mut self, model: WeightModel) -> WeightedBuilder {
        // Probabilities buffered so far become irrelevant.
        for e in &mut self.edges {
            e.2 = 1.0;
        }
        WeightedBuilder {
            inner: self,
            model,
            lt_normalize: false,
        }
    }

    /// Sorts, deduplicates, and freezes the edge list into CSR form.
    pub fn build(self) -> Result<Graph, GraphError> {
        let Self {
            num_vertices,
            mut edges,
            duplicate_policy,
            ..
        } = self;
        if edges.len() >= u32::MAX as usize {
            return Err(GraphError::TooLarge(format!(
                "{} edges exceeds the u32 edge-count limit",
                edges.len()
            )));
        }
        edges.sort_unstable_by_key(|&(u, v, _)| (u, v));
        dedup_edges(&mut edges, duplicate_policy);
        Ok(build_csr(num_vertices, &edges))
    }
}

/// A [`GraphBuilder`] with a recorded weight model; see
/// [`GraphBuilder::assign_weights`].
#[derive(Clone, Debug)]
pub struct WeightedBuilder {
    inner: GraphBuilder,
    model: WeightModel,
    lt_normalize: bool,
}

impl WeightedBuilder {
    /// Enables the paper's linear-threshold weight readjustment: after the
    /// model assigns raw weights, each vertex's incoming weights are scaled
    /// so they sum to at most one (weights already summing below one are
    /// left untouched, preserving a nonzero "no activation" probability).
    #[must_use]
    pub fn normalize_for_lt(mut self) -> Self {
        self.lt_normalize = true;
        self
    }

    /// Adds a directed arc (probability comes from the model).
    pub fn add_arc(&mut self, source: Vertex, target: Vertex) -> Result<(), GraphError> {
        self.inner.add_arc(source, target)
    }

    /// Adds both directions of an undirected edge.
    pub fn add_undirected(&mut self, a: Vertex, b: Vertex) -> Result<(), GraphError> {
        self.inner.add_arc(a, b)?;
        self.inner.add_arc(b, a)
    }

    /// Sorts, deduplicates, weights, optionally LT-normalizes, and freezes.
    pub fn build(self) -> Result<Graph, GraphError> {
        let WeightedBuilder {
            inner,
            model,
            lt_normalize,
        } = self;
        let GraphBuilder {
            num_vertices,
            mut edges,
            duplicate_policy,
            ..
        } = inner;
        if edges.len() >= u32::MAX as usize {
            return Err(GraphError::TooLarge(format!(
                "{} edges exceeds the u32 edge-count limit",
                edges.len()
            )));
        }
        edges.sort_unstable_by_key(|&(u, v, _)| (u, v));
        dedup_edges(&mut edges, duplicate_policy);
        model.apply(num_vertices, &mut edges);
        if lt_normalize {
            normalize_in_weights(num_vertices, &mut edges);
        }
        Ok(build_csr(num_vertices, &edges))
    }
}

fn dedup_edges(edges: &mut Vec<(Vertex, Vertex, f32)>, policy: DuplicatePolicy) {
    match policy {
        DuplicatePolicy::KeepFirst => {
            edges.dedup_by_key(|&mut (u, v, _)| (u, v));
        }
        DuplicatePolicy::KeepMax => {
            edges.dedup_by(|next, kept| {
                if (next.0, next.1) == (kept.0, kept.1) {
                    kept.2 = kept.2.max(next.2);
                    true
                } else {
                    false
                }
            });
        }
        DuplicatePolicy::NoisyOr => {
            edges.dedup_by(|next, kept| {
                if (next.0, next.1) == (kept.0, kept.1) {
                    kept.2 = 1.0 - (1.0 - kept.2) * (1.0 - next.2);
                    true
                } else {
                    false
                }
            });
        }
    }
}

/// Scales each destination's incoming weights to sum to ≤ 1 (Kempe-style LT
/// readjustment). Operates on the sorted edge list so both CSR directions
/// observe the same normalized values.
fn normalize_in_weights(num_vertices: u32, edges: &mut [(Vertex, Vertex, f32)]) {
    let mut sums = vec![0.0f64; num_vertices as usize];
    for &(_, v, p) in edges.iter() {
        sums[v as usize] += f64::from(p);
    }
    for e in edges.iter_mut() {
        let s = sums[e.1 as usize];
        if s > 1.0 {
            e.2 = (f64::from(e.2) / s) as f32;
        }
    }
}

/// Builds both CSR directions from a sorted, deduplicated edge list.
fn build_csr(num_vertices: u32, edges: &[(Vertex, Vertex, f32)]) -> Graph {
    let n = num_vertices as usize;
    let m = edges.len();

    // Forward: the list is already sorted by (source, target).
    let mut out_offsets = vec![0usize; n + 1];
    for &(u, _, _) in edges {
        out_offsets[u as usize + 1] += 1;
    }
    for i in 0..n {
        out_offsets[i + 1] += out_offsets[i];
    }
    let mut out_targets = Vec::with_capacity(m);
    let mut out_probs = Vec::with_capacity(m);
    for &(_, v, p) in edges {
        out_targets.push(v);
        out_probs.push(p);
    }

    // Reverse: counting sort by destination; sources within a destination
    // come out sorted because the input is sorted by source first.
    let mut in_offsets = vec![0usize; n + 1];
    for &(_, v, _) in edges {
        in_offsets[v as usize + 1] += 1;
    }
    for i in 0..n {
        in_offsets[i + 1] += in_offsets[i];
    }
    let mut cursor = in_offsets.clone();
    let mut in_sources = vec![0 as Vertex; m];
    let mut in_probs = vec![0.0f32; m];
    for &(u, v, p) in edges {
        let slot = cursor[v as usize];
        in_sources[slot] = u;
        in_probs[slot] = p;
        cursor[v as usize] += 1;
    }

    Graph {
        num_vertices,
        out_offsets,
        out_targets,
        out_probs,
        in_offsets,
        in_sources,
        in_probs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(3);
        assert!(matches!(
            b.add_edge(3, 0, 0.5),
            Err(GraphError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            b.add_edge(0, 7, 0.5),
            Err(GraphError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_bad_probability() {
        let mut b = GraphBuilder::new(3);
        for p in [f32::NAN, f32::INFINITY, -0.1, 1.5] {
            assert!(matches!(
                b.add_edge(0, 1, p),
                Err(GraphError::InvalidProbability { .. })
            ));
        }
    }

    #[test]
    fn drops_self_loops_by_default() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(1, 1, 0.4).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn keeps_self_loops_on_request() {
        let mut b = GraphBuilder::new(2).keep_self_loops();
        b.add_edge(1, 1, 0.4).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 1);
        g.validate().unwrap();
    }

    #[test]
    fn dedup_keep_first() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.2).unwrap();
        b.add_edge(0, 1, 0.9).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_prob(0, 1), Some(0.2));
    }

    #[test]
    fn dedup_keep_max() {
        let mut b = GraphBuilder::new(2).duplicate_policy(DuplicatePolicy::KeepMax);
        b.add_edge(0, 1, 0.2).unwrap();
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(0, 1, 0.5).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.edge_prob(0, 1), Some(0.9));
    }

    #[test]
    fn dedup_noisy_or() {
        let mut b = GraphBuilder::new(2).duplicate_policy(DuplicatePolicy::NoisyOr);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(0, 1, 0.5).unwrap();
        let g = b.build().unwrap();
        let p = g.edge_prob(0, 1).unwrap();
        assert!((p - 0.75).abs() < 1e-6);
    }

    #[test]
    fn insertion_order_irrelevant() {
        let mut b1 = GraphBuilder::new(4);
        let mut b2 = GraphBuilder::new(4);
        let edges = [(0u32, 1u32, 0.1f32), (2, 3, 0.2), (1, 2, 0.3), (0, 3, 0.4)];
        for &(u, v, p) in &edges {
            b1.add_edge(u, v, p).unwrap();
        }
        for &(u, v, p) in edges.iter().rev() {
            b2.add_edge(u, v, p).unwrap();
        }
        assert_eq!(b1.build().unwrap(), b2.build().unwrap());
    }

    #[test]
    fn undirected_adds_both_directions() {
        let mut b = GraphBuilder::new(2);
        b.add_undirected(0, 1, 0.3).unwrap();
        let g = b.build().unwrap();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
    }

    #[test]
    fn lt_normalization_caps_in_weight() {
        let mut b = GraphBuilder::new(4).assign_weights(WeightModel::Constant(0.9));
        // Vertex 3 has three in-edges of 0.9 → sum 2.7 → scaled to 1.0.
        for u in 0..3 {
            b.add_arc(u, 3).unwrap();
        }
        // Vertex 0 has a single in-edge, sum 0.9 ≤ 1 → untouched.
        b.add_arc(1, 0).unwrap();
        let g = b.normalize_for_lt().build().unwrap();
        assert!((g.in_weight_sum(3) - 1.0).abs() < 1e-6);
        assert!((g.in_weight_sum(0) - 0.9).abs() < 1e-6);
        g.validate().unwrap();
    }

    #[test]
    fn reverse_csr_mirrors_forward() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 4, 0.5).unwrap();
        b.add_edge(3, 4, 0.25).unwrap();
        b.add_edge(1, 4, 0.75).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.in_neighbors(4), &[0, 1, 3]);
        assert_eq!(g.in_probs(4), &[0.5, 0.75, 0.25]);
        g.validate().unwrap();
    }
}
