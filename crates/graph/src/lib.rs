//! Directed-graph engine for `ripples-rs`.
//!
//! This crate is the input substrate of the CLUSTER'19 reproduction. It
//! provides:
//!
//! * [`Graph`] — an immutable directed graph in compressed-sparse-row form,
//!   stored in **both directions** (out-edges for forward diffusion
//!   simulation, in-edges for reverse-reachability sampling) with per-edge
//!   activation probabilities.
//! * [`GraphBuilder`] — edge-list accumulation, deduplication, self-loop
//!   policy, probability assignment ([`weights::WeightModel`]) and the
//!   linear-threshold normalization described in the paper ("the weights are
//!   readjusted such that the sum of the probabilities of traversing one of
//!   the neighboring edges and of not traversing any of them, is one").
//! * [`generators`] — deterministic synthetic network generators
//!   (Erdős–Rényi, Barabási–Albert, R-MAT, Watts–Strogatz, a modular
//!   "co-expression" generator for the paper's biology case study) and the
//!   [`generators::snap_standins`] catalogue: scaled-down analogues of the
//!   eight SNAP graphs in the paper's Table 2.
//! * [`io`] — SNAP-style edge-list text I/O and a compact binary format.
//! * [`partition`] — deterministic edge-balanced vertex-cut shards with
//!   ghost-vertex tables, the substrate of the graph-sharded distributed
//!   engine.
//! * [`stats`] — the Table 2 summary statistics (n, m, average/max degree).
//! * [`traversal`] — plain BFS and weakly-connected components, used by
//!   tests and the generators.

#![warn(missing_docs)]

pub mod builder;
pub mod clustering;
pub mod csr;
pub mod generators;
pub mod io;
pub mod partition;
pub mod permute;
pub mod stats;
pub mod subgraph;
pub mod traversal;
pub mod types;
pub mod weights;

pub use builder::GraphBuilder;
pub use clustering::{global_clustering_coefficient, triangle_count};
pub use csr::Graph;
pub use partition::{ChunkView, VertexCutShard};
pub use permute::{permute_graph, Permutation};
pub use stats::GraphStats;
pub use subgraph::{induced_subgraph, split_by_labels, InducedSubgraph};
pub use types::{GraphError, Vertex};
pub use weights::WeightModel;
