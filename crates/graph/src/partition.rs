//! Deterministic edge-balanced vertex-cut partitioning with ghost-vertex
//! (mirror) tables.
//!
//! The sample-partitioned distributed engine still replicates the whole
//! graph on every rank; this module is the substrate for the *graph*-sharded
//! engine (`imm_sharded` in `ripples-core`), where each rank holds only
//! `~m/p` in-edges. The cut is over **edges**, not vertices: the reverse CSR
//! is flattened into one global edge order (grouped by destination, sources
//! sorted within a group — the same order [`Graph`] stores) and split into
//! `p` contiguous, equal-size ranges. A vertex whose in-edges straddle a
//! range boundary is *mirrored*: several ranks each own a contiguous chunk
//! of its in-list, and the ghost table records, for every vertex, the
//! contiguous rank interval holding its chunks so a frontier crossing can be
//! routed without any lookup communication.
//!
//! Everything is a pure function of `(graph, rank, size)` — two ranks never
//! disagree about ownership, and a shard can in principle be *loaded*
//! directly from an edge sub-list without materializing the full graph
//! (the constructor here reads the full graph only because the experiments
//! hold it anyway).
//!
//! The per-chunk `lt_prefix` field carries the exact sequential `f64` prefix
//! sum of the in-probabilities before the chunk, so a linear-threshold draw
//! can be resolved chunk-locally while staying bitwise identical to the
//! sequential reference accumulation (see `ripples-diffusion`'s
//! vertex-keyed sampler).

use crate::csr::Graph;
use crate::types::Vertex;

/// Sentinel in the vertex→chunk map: this rank holds no in-edges of v.
const NO_CHUNK: u32 = u32::MAX;

/// One rank's shard of an edge-balanced vertex-cut: a contiguous range of
/// the global in-edge order, stored as per-vertex chunks, plus the
/// full ghost (mirror) table for frontier routing.
#[derive(Clone, Debug)]
pub struct VertexCutShard {
    num_vertices: u32,
    rank: u32,
    size: u32,
    /// Destination vertex of chunk `i`.
    chunk_vertex: Vec<Vertex>,
    /// Offset of chunk `i`'s first edge within its vertex's full in-list.
    chunk_edge_start: Vec<u32>,
    /// Exact sequential `f64` sum of the in-probabilities preceding the
    /// chunk (the LT accumulator value at the chunk boundary).
    chunk_lt_prefix: Vec<f64>,
    /// CSR offsets of the chunks into `sources`/`probs`.
    chunk_offsets: Vec<usize>,
    sources: Vec<Vertex>,
    probs: Vec<f32>,
    /// Vertex → local chunk index, or [`NO_CHUNK`].
    chunk_of: Vec<u32>,
    /// Ghost table: vertex → packed `(first_rank << 32) | end_rank`
    /// (half-open rank interval holding the vertex's in-edge chunks;
    /// `0` for in-degree-0 vertices — the empty interval).
    mirrors: Vec<u64>,
}

/// A borrowed view of one vertex's local in-edge chunk.
#[derive(Clone, Copy, Debug)]
pub struct ChunkView<'a> {
    /// Offset of the chunk's first edge within the vertex's full in-list.
    pub edge_start: u32,
    /// LT accumulator value at the chunk boundary (sum of the probabilities
    /// of the preceding edges, accumulated sequentially in `f64`).
    pub lt_prefix: f64,
    /// Sources of the chunk's edges.
    pub sources: &'a [Vertex],
    /// Probabilities aligned with `sources`.
    pub probs: &'a [f32],
}

/// The rank owning global in-edge position `e` when `m` edges are split
/// into `size` contiguous equal ranges (`rank r` owns
/// `[r*m/size, (r+1)*m/size)`).
#[inline]
#[must_use]
pub fn edge_owner(e: usize, m: usize, size: u32) -> u32 {
    debug_assert!(e < m);
    ((((e as u64 + 1) * u64::from(size)).div_ceil(m as u64)) as u32 - 1).min(size - 1)
}

impl VertexCutShard {
    /// Extracts rank `rank` of `size`'s shard from a full graph.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0` or `rank >= size`.
    #[must_use]
    pub fn extract(graph: &Graph, rank: u32, size: u32) -> Self {
        assert!(size > 0, "need at least one rank");
        assert!(rank < size, "rank out of range");
        let n = graph.num_vertices();
        let m = graph.num_edges();
        let lo = (m as u64 * u64::from(rank) / u64::from(size)) as usize;
        let hi = (m as u64 * (u64::from(rank) + 1) / u64::from(size)) as usize;

        let mut chunk_vertex = Vec::new();
        let mut chunk_edge_start = Vec::new();
        let mut chunk_lt_prefix = Vec::new();
        let mut chunk_offsets = vec![0];
        let mut sources = Vec::new();
        let mut probs = Vec::new();
        let mut chunk_of = vec![NO_CHUNK; n as usize];
        let mut mirrors = vec![0u64; n as usize];

        let mut goff = 0usize; // global offset of v's first in-edge
        for v in 0..n {
            let full_sources = graph.in_neighbors(v);
            let full_probs = graph.in_probs(v);
            let deg = full_sources.len();
            if deg > 0 {
                let first = edge_owner(goff, m, size);
                let last = edge_owner(goff + deg - 1, m, size);
                mirrors[v as usize] = (u64::from(first) << 32) | u64::from(last + 1);
                let start = lo.max(goff);
                let end = hi.min(goff + deg);
                if start < end {
                    let within = start - goff;
                    // The exact accumulator value the sequential LT loop
                    // holds after the preceding edges: same adds, same order.
                    let mut prefix = 0.0f64;
                    for &p in &full_probs[..within] {
                        prefix += f64::from(p);
                    }
                    chunk_of[v as usize] = chunk_vertex.len() as u32;
                    chunk_vertex.push(v);
                    chunk_edge_start.push(within as u32);
                    chunk_lt_prefix.push(prefix);
                    sources.extend_from_slice(&full_sources[within..end - goff]);
                    probs.extend_from_slice(&full_probs[within..end - goff]);
                    chunk_offsets.push(sources.len());
                }
            }
            goff += deg;
        }
        Self {
            num_vertices: n,
            rank,
            size,
            chunk_vertex,
            chunk_edge_start,
            chunk_lt_prefix,
            chunk_offsets,
            sources,
            probs,
            chunk_of,
            mirrors,
        }
    }

    /// Total vertex count of the parent graph.
    #[inline]
    #[must_use]
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// This shard's rank.
    #[inline]
    #[must_use]
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// World size the cut was computed for.
    #[inline]
    #[must_use]
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Number of in-edges stored on this rank.
    #[must_use]
    pub fn local_edges(&self) -> usize {
        self.sources.len()
    }

    /// Number of vertex chunks stored on this rank.
    #[must_use]
    pub fn num_chunks(&self) -> usize {
        self.chunk_vertex.len()
    }

    /// The local in-edge chunk of vertex `v`, if this rank holds one.
    #[inline]
    #[must_use]
    pub fn chunk(&self, v: Vertex) -> Option<ChunkView<'_>> {
        let i = self.chunk_of[v as usize];
        if i == NO_CHUNK {
            return None;
        }
        let i = i as usize;
        let (s, e) = (self.chunk_offsets[i], self.chunk_offsets[i + 1]);
        Some(ChunkView {
            edge_start: self.chunk_edge_start[i],
            lt_prefix: self.chunk_lt_prefix[i],
            sources: &self.sources[s..e],
            probs: &self.probs[s..e],
        })
    }

    /// The half-open rank interval holding `v`'s in-edge chunks (the ghost
    /// table lookup). Empty for in-degree-0 vertices.
    #[inline]
    #[must_use]
    pub fn mirror_ranks(&self, v: Vertex) -> std::ops::Range<u32> {
        let packed = self.mirrors[v as usize];
        (packed >> 32) as u32..(packed & 0xFFFF_FFFF) as u32
    }

    /// Iterates the destination vertices of the locally-held chunks.
    pub fn chunk_vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        self.chunk_vertex.iter().copied()
    }

    /// Resident bytes of this shard: edge chunks plus the two O(n) routing
    /// tables (vertex→chunk and the ghost table).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.sources.len() * size_of::<Vertex>()
            + self.probs.len() * size_of::<f32>()
            + self.chunk_vertex.len() * (size_of::<Vertex>() + size_of::<u32>() + size_of::<f64>())
            + self.chunk_offsets.len() * size_of::<usize>()
            + self.chunk_of.len() * size_of::<u32>()
            + self.mirrors.len() * size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi;
    use crate::{GraphBuilder, WeightModel};

    fn graph() -> Graph {
        erdos_renyi(150, 1200, WeightModel::UniformRandom { seed: 9 }, false, 61)
    }

    #[test]
    fn shards_cover_every_edge_exactly_once() {
        let g = graph();
        for size in [1u32, 2, 3, 4, 7] {
            let shards: Vec<VertexCutShard> = (0..size)
                .map(|r| VertexCutShard::extract(&g, r, size))
                .collect();
            let total: usize = shards.iter().map(VertexCutShard::local_edges).sum();
            assert_eq!(total, g.num_edges(), "size {size}");
            // Per-vertex: concatenating the chunks in rank order rebuilds
            // the full in-list, with consistent edge_start offsets.
            for v in 0..g.num_vertices() {
                let mut rebuilt: Vec<Vertex> = Vec::new();
                for shard in &shards {
                    if let Some(c) = shard.chunk(v) {
                        assert_eq!(c.edge_start as usize, rebuilt.len(), "vertex {v}");
                        rebuilt.extend_from_slice(c.sources);
                    }
                }
                assert_eq!(rebuilt, g.in_neighbors(v), "vertex {v} size {size}");
            }
        }
    }

    #[test]
    fn edge_balance_is_tight() {
        let g = graph();
        let size = 5u32;
        let quota = g.num_edges().div_ceil(size as usize);
        for r in 0..size {
            let shard = VertexCutShard::extract(&g, r, size);
            assert!(
                shard.local_edges() <= quota,
                "rank {r}: {} edges exceeds quota {quota}",
                shard.local_edges()
            );
        }
    }

    #[test]
    fn mirror_table_matches_chunk_placement() {
        let g = graph();
        let size = 4u32;
        let shards: Vec<VertexCutShard> = (0..size)
            .map(|r| VertexCutShard::extract(&g, r, size))
            .collect();
        for v in 0..g.num_vertices() {
            let interval = shards[0].mirror_ranks(v);
            // Every shard agrees on the ghost table.
            for shard in &shards {
                assert_eq!(shard.mirror_ranks(v), interval, "vertex {v}");
            }
            let holders: Vec<u32> = (0..size)
                .filter(|&r| shards[r as usize].chunk(v).is_some())
                .collect();
            let expected: Vec<u32> = interval.collect();
            assert_eq!(holders, expected, "vertex {v}");
            if g.in_degree(v) == 0 {
                assert!(holders.is_empty(), "vertex {v} has no in-edges");
            }
        }
    }

    #[test]
    fn lt_prefix_matches_sequential_accumulation() {
        let g = graph();
        let size = 3u32;
        for r in 0..size {
            let shard = VertexCutShard::extract(&g, r, size);
            for v in shard.chunk_vertices().collect::<Vec<_>>() {
                let c = shard.chunk(v).unwrap();
                let mut acc = 0.0f64;
                for &p in &g.in_probs(v)[..c.edge_start as usize] {
                    acc += f64::from(p);
                }
                assert_eq!(c.lt_prefix.to_bits(), acc.to_bits(), "vertex {v} rank {r}");
            }
        }
    }

    #[test]
    fn single_rank_shard_is_the_whole_graph() {
        let g = graph();
        let shard = VertexCutShard::extract(&g, 0, 1);
        assert_eq!(shard.local_edges(), g.num_edges());
        for v in 0..g.num_vertices() {
            match shard.chunk(v) {
                Some(c) => {
                    assert_eq!(c.edge_start, 0);
                    assert_eq!(c.sources, g.in_neighbors(v));
                    assert_eq!(c.lt_prefix, 0.0);
                }
                None => assert_eq!(g.in_degree(v), 0),
            }
        }
    }

    #[test]
    fn sharding_shrinks_resident_bytes() {
        // Edge storage dominates for m >> n; four shards must each hold
        // well under the full graph's edge footprint.
        let g = erdos_renyi(200, 4000, WeightModel::UniformRandom { seed: 2 }, false, 8);
        let full = g.resident_bytes();
        for r in 0..4 {
            let shard = VertexCutShard::extract(&g, r, 4);
            assert!(
                shard.resident_bytes() * 2 < full,
                "rank {r}: shard {} bytes vs full {full}",
                shard.resident_bytes()
            );
        }
    }

    #[test]
    fn empty_graph_shards() {
        let g = GraphBuilder::new(3).build().unwrap();
        let shard = VertexCutShard::extract(&g, 1, 2);
        assert_eq!(shard.local_edges(), 0);
        assert_eq!(shard.num_chunks(), 0);
        assert!(shard.mirror_ranks(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn bad_rank_panics() {
        let g = GraphBuilder::new(4).build().unwrap();
        let _ = VertexCutShard::extract(&g, 2, 2);
    }
}
