//! Property-based tests for graph construction and I/O.

use proptest::prelude::*;
use ripples_graph::builder::DuplicatePolicy;
use ripples_graph::io::{
    read_binary, read_edge_list, write_binary, write_edge_list, EdgeListOptions, VertexIds,
};
use ripples_graph::{GraphBuilder, WeightModel};

/// Strategy: a vertex count and an arbitrary edge list over it.
fn edges_strategy() -> impl Strategy<Value = (u32, Vec<(u32, u32, f32)>)> {
    (2u32..80).prop_flat_map(|n| {
        let edge = (0..n, 0..n, 0.0f32..=1.0f32);
        (Just(n), prop::collection::vec(edge, 0..300))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever we feed the builder, the result passes full validation.
    #[test]
    fn built_graphs_validate((n, edges) in edges_strategy()) {
        let mut b = GraphBuilder::new(n);
        for (u, v, p) in edges {
            b.add_edge(u, v, p).unwrap();
        }
        let g = b.build().unwrap();
        prop_assert!(g.validate().is_ok());
    }

    /// Insertion order never changes the built graph.
    #[test]
    fn order_independence((n, edges) in edges_strategy()) {
        // KeepFirst is order-sensitive by definition; use NoisyOr which is
        // commutative up to float rounding — so compare structure only.
        let mut fwd = GraphBuilder::new(n).duplicate_policy(DuplicatePolicy::KeepMax);
        let mut rev = GraphBuilder::new(n).duplicate_policy(DuplicatePolicy::KeepMax);
        for &(u, v, p) in &edges {
            fwd.add_edge(u, v, p).unwrap();
        }
        for &(u, v, p) in edges.iter().rev() {
            rev.add_edge(u, v, p).unwrap();
        }
        prop_assert_eq!(fwd.build().unwrap(), rev.build().unwrap());
    }

    /// Both CSR directions always contain the same edge multiset.
    #[test]
    fn directions_agree((n, edges) in edges_strategy()) {
        let mut b = GraphBuilder::new(n);
        for (u, v, p) in edges {
            b.add_edge(u, v, p).unwrap();
        }
        let g = b.build().unwrap();
        let out_sum: usize = (0..n).map(|v| g.out_degree(v)).sum();
        let in_sum: usize = (0..n).map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, g.num_edges());
        prop_assert_eq!(in_sum, g.num_edges());
        for v in 0..n {
            for (u, p) in g.in_edges(v) {
                prop_assert_eq!(g.edge_prob(u, v), Some(p));
            }
        }
    }

    /// Binary serialization round-trips exactly.
    #[test]
    fn binary_roundtrip((n, edges) in edges_strategy()) {
        let mut b = GraphBuilder::new(n);
        for (u, v, p) in edges {
            b.add_edge(u, v, p).unwrap();
        }
        let g = b.build().unwrap();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        prop_assert_eq!(read_binary(buf.as_slice()).unwrap(), g);
    }

    /// Text serialization round-trips structurally (probabilities via
    /// shortest-float printing are exact for f32).
    #[test]
    fn text_roundtrip((n, edges) in edges_strategy()) {
        let mut b = GraphBuilder::new(n);
        for (u, v, p) in edges {
            b.add_edge(u, v, p).unwrap();
        }
        let g = b.build().unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(
            buf.as_slice(),
            EdgeListOptions { vertex_ids: VertexIds::Literal, ..Default::default() },
        )
        .unwrap();
        // Literal ids keep vertices that have at least one edge; isolated
        // trailing vertices are dropped by the text format, so compare edges.
        let e1: Vec<_> = g.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        prop_assert_eq!(e1, e2);
    }

    /// LT normalization caps every vertex's in-weight at one and never
    /// increases a weight.
    #[test]
    fn lt_normalization_caps((n, edges) in edges_strategy()) {
        let mut plain = GraphBuilder::new(n).assign_weights(WeightModel::UniformRandom { seed: 5 });
        let mut normed = GraphBuilder::new(n).assign_weights(WeightModel::UniformRandom { seed: 5 });
        for &(u, v, _) in &edges {
            plain.add_arc(u, v).unwrap();
            normed.add_arc(u, v).unwrap();
        }
        let plain = plain.build().unwrap();
        let normed = normed.normalize_for_lt().build().unwrap();
        for v in 0..n {
            prop_assert!(normed.in_weight_sum(v) <= 1.0 + 1e-5);
            for ((_, p_n), (_, p_p)) in normed.in_edges(v).zip(plain.in_edges(v)) {
                prop_assert!(p_n <= p_p + 1e-6);
            }
        }
    }

    /// Weighted-cascade gives every non-source vertex in-weight exactly 1.
    #[test]
    fn weighted_cascade_sums((n, edges) in edges_strategy()) {
        let mut b = GraphBuilder::new(n).assign_weights(WeightModel::WeightedCascade);
        for &(u, v, _) in &edges {
            b.add_arc(u, v).unwrap();
        }
        let g = b.build().unwrap();
        for v in 0..n {
            if g.in_degree(v) > 0 {
                prop_assert!((g.in_weight_sum(v) - 1.0).abs() < 1e-4);
            }
        }
    }
}
