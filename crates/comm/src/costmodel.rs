//! α–β communication-time model and cluster presets.
//!
//! This host has a single CPU core, so the paper's 16-node (Puma) and
//! 1024-node (Edison) strong-scaling experiments cannot be *timed* here
//! under any implementation. Following the reproduction's substitution rule,
//! the scaling harness instead measures single-rank *work* (edges examined
//! during sampling, counter updates during selection) and converts it to
//! predicted wall-clock with:
//!
//! * a per-cluster compute rate (edges traversed per second per core, and
//!   cores per node), and
//! * the classic Hockney/α–β collective model: a recursive-doubling
//!   all-reduce over `b` bytes among `p` ranks costs
//!   `⌈log₂ p⌉ · (α + β·b)` seconds.
//!
//! The presets below approximate the paper's two machines closely enough to
//! reproduce the *shape* of Figures 7–8 (which phase dominates, where LT
//! stops scaling); absolute seconds are not comparable and are not claimed
//! to be.

/// Latency/bandwidth parameters of one interconnect.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AlphaBetaModel {
    /// Per-message latency α in seconds.
    pub alpha: f64,
    /// Per-byte transfer time β in seconds.
    pub beta: f64,
}

impl AlphaBetaModel {
    /// Time for a recursive-doubling all-reduce of `bytes` among `ranks`.
    #[must_use]
    pub fn allreduce_time(&self, bytes: u64, ranks: u32) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        let rounds = f64::from(32 - (ranks - 1).leading_zeros());
        rounds * (self.alpha + self.beta * bytes as f64)
    }

    /// Time for a broadcast of `bytes` among `ranks` (binomial tree).
    #[must_use]
    pub fn broadcast_time(&self, bytes: u64, ranks: u32) -> f64 {
        self.allreduce_time(bytes, ranks)
    }

    /// Time for a barrier among `ranks` (empty-payload all-reduce).
    #[must_use]
    pub fn barrier_time(&self, ranks: u32) -> f64 {
        self.allreduce_time(0, ranks)
    }

    /// Time for a personalized all-to-all (`MPI_Alltoallv`) sending `bytes`
    /// total from this rank among `ranks`: one direct message per peer
    /// (pairwise-exchange algorithm), so latency is linear in the peer
    /// count while the payload crosses the wire once.
    #[must_use]
    pub fn alltoallv_time(&self, bytes: u64, ranks: u32) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        f64::from(ranks - 1) * self.alpha + self.beta * bytes as f64
    }
}

/// One compute cluster: node/core topology, compute rate, and interconnect.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Hardware threads used per node.
    pub threads_per_node: u32,
    /// Sampling throughput per thread, in RRR edge-examinations per second.
    /// Calibrated so the single-node runtimes land in the paper's ballpark;
    /// only *ratios* between configurations matter for scaling shapes.
    pub edge_rate_per_thread: f64,
    /// Interconnect parameters.
    pub network: AlphaBetaModel,
}

impl ClusterSpec {
    /// The paper's Puma cluster: 2× 10-core Xeon E5-2680v2 per node
    /// (hyper-threading off), InfiniBand FDR.
    #[must_use]
    pub fn puma() -> Self {
        Self {
            name: "puma",
            threads_per_node: 20,
            edge_rate_per_thread: 60.0e6,
            network: AlphaBetaModel {
                alpha: 1.5e-6,
                beta: 1.0 / 6.8e9, // FDR 4× ≈ 54 Gbit/s ≈ 6.8 GB/s
            },
        }
    }

    /// The paper's Edison (NERSC Cray XC30): 2× 12-core Ivy Bridge per node
    /// with hyper-threading (48 threads used), Aries dragonfly.
    #[must_use]
    pub fn edison() -> Self {
        Self {
            name: "edison",
            threads_per_node: 48,
            // Hyper-threaded cores at a lower clock: lower per-thread rate.
            edge_rate_per_thread: 35.0e6,
            network: AlphaBetaModel {
                alpha: 1.2e-6,
                beta: 1.0 / 9.0e9,
            },
        }
    }

    /// Seconds to execute `edge_work` edge-examinations spread perfectly
    /// across `nodes` nodes of this cluster.
    #[must_use]
    pub fn compute_time(&self, edge_work: u64, nodes: u32) -> f64 {
        let threads = f64::from(self.threads_per_node) * f64::from(nodes.max(1));
        edge_work as f64 / (self.edge_rate_per_thread * threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_scales_logarithmically() {
        let m = AlphaBetaModel {
            alpha: 1e-6,
            beta: 1e-9,
        };
        let t2 = m.allreduce_time(1024, 2);
        let t4 = m.allreduce_time(1024, 4);
        let t1024 = m.allreduce_time(1024, 1024);
        assert!((t4 / t2 - 2.0).abs() < 1e-9);
        assert!((t1024 / t2 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn single_rank_costs_nothing() {
        let m = ClusterSpec::puma().network;
        assert_eq!(m.allreduce_time(1 << 20, 1), 0.0);
        assert_eq!(m.barrier_time(1), 0.0);
    }

    #[test]
    fn compute_time_halves_with_double_nodes() {
        let c = ClusterSpec::edison();
        let t1 = c.compute_time(1_000_000_000, 1);
        let t2 = c.compute_time(1_000_000_000, 2);
        assert!((t1 / t2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn presets_are_distinct() {
        let p = ClusterSpec::puma();
        let e = ClusterSpec::edison();
        assert_ne!(p.threads_per_node, e.threads_per_node);
        assert!(p.edge_rate_per_thread > e.edge_rate_per_thread);
    }

    #[test]
    fn alltoallv_linear_latency_single_payload_pass() {
        let m = AlphaBetaModel {
            alpha: 1e-6,
            beta: 1e-9,
        };
        assert_eq!(m.alltoallv_time(1 << 20, 1), 0.0);
        // Latency term scales with peers; payload term does not.
        let t2 = m.alltoallv_time(0, 2);
        let t5 = m.alltoallv_time(0, 5);
        assert!((t5 / t2 - 4.0).abs() < 1e-9);
        let payload = m.alltoallv_time(1_000_000, 2) - t2;
        assert!((payload - 1e-3).abs() < 1e-12, "1 MB at 1 ns/B = 1 ms");
    }

    #[test]
    fn nonpower_of_two_rounds_up() {
        let m = AlphaBetaModel {
            alpha: 1.0,
            beta: 0.0,
        };
        // 5 ranks → ceil(log2 5) = 3 rounds.
        assert_eq!(m.allreduce_time(0, 5), 3.0);
    }
}
