//! Deterministic fault injection for any [`Communicator`] backend.
//!
//! [`FaultComm`] wraps a backend and applies a [`FaultPlan`]: a seeded
//! schedule of per-op drops, delays, payload truncations, and rank stalls.
//! Every fault decision is a pure function of `(plan seed, rank, op index)`
//! drawn from a [`ripples_rng::SplitMix64`] splittable stream — no wall
//! clock, no OS randomness — so a failing run is exactly reproducible from
//! the seed alone, and *every* rank can locally compute whether *any* rank's
//! attempt fails.
//!
//! That global computability is the design's load-bearing wall: when any
//! live rank is scheduled to fail attempt `t`, **all** ranks skip the
//! backend call for that attempt and surface the same [`CommError`], so the
//! backend never sees a half-participated collective (which would deadlock a
//! real MPI, and does deadlock [`crate::ThreadWorld`]). Retrying in lockstep
//! (see [`crate::retry::RetryComm`]) then keeps the per-rank op counters
//! aligned forever, and each *logical* op reaches the backend exactly once —
//! which is why a zero-fault `FaultComm` is bitwise transparent, backend
//! [`CommStats`] included.
//!
//! Time is a deterministic virtual clock: each attempt costs one tick plus
//! any injected delay, and a delay beyond the plan's timeout budget surfaces
//! as [`CommError::TimedOut`] *instead of* performing the op (so a retry
//! never double-applies an in-place all-reduce).
//!
//! Dead ranks become **zombies**: in an in-process world the rank's thread
//! doubles as the transport, so it keeps calling collectives to keep the
//! world in lockstep, but `FaultComm` neutralizes its payloads (zeros for
//! sums, `-∞` for max, an empty list for gathers). A broadcast rooted at a
//! dead rank is the one unrecoverable case: [`CommError::DeadRoot`].

use crate::communicator::{
    CollectiveOp, CommError, CommHealth, CommStats, Communicator, ExchangeHandle,
};
use ripples_rng::SplitMix64;
use std::cell::{Cell, RefCell};

/// Domain separator mixed into the plan seed so fault draws never collide
/// with the engines' sampling streams, even under the same master seed.
const FAULT_DOMAIN: u64 = 0xFA17_C0DE_5EED_0001;

/// A rank that stops responding from a given op index onward (until the
/// retry layer declares it dead).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stall {
    /// The rank that stalls.
    pub rank: u32,
    /// First op index at which it is unresponsive.
    pub from_op: u64,
}

/// What the schedule injects for one `(rank, op index)` pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The rank's message for this attempt is lost.
    Drop,
    /// The rank's payload arrives short.
    Truncate,
    /// The rank answers `ticks` late (only fails if beyond the timeout).
    Delay(u64),
    /// The rank is unresponsive (persistent; see [`Stall`]).
    Stall,
}

/// A deterministic, seeded fault schedule.
///
/// Rates are per-rank-per-op probabilities; draws for distinct `(rank, op)`
/// pairs are independent SplitMix64 streams, so the schedule is identical no
/// matter which rank evaluates it.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    drop_rate: f64,
    delay_rate: f64,
    truncate_rate: f64,
    max_delay_ticks: u64,
    timeout_ticks: u64,
    stalls: Vec<Stall>,
}

impl FaultPlan {
    /// A fault-free plan: [`FaultComm`] with this plan is bitwise
    /// transparent.
    #[must_use]
    pub fn none() -> Self {
        Self::new(0)
    }

    /// An all-rates-zero plan carrying `seed`; compose with the `with_*`
    /// builders.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            drop_rate: 0.0,
            delay_rate: 0.0,
            truncate_rate: 0.0,
            max_delay_ticks: 6,
            timeout_ticks: 4,
            stalls: Vec::new(),
        }
    }

    /// The CLI's `--chaos-seed`/`--chaos-rate` preset: drops and delays at
    /// `rate`, truncations at `rate / 4`.
    #[must_use]
    pub fn chaos(seed: u64, rate: f64) -> Self {
        Self::new(seed)
            .with_drop_rate(rate)
            .with_delay_rate(rate)
            .with_truncate_rate(rate / 4.0)
    }

    /// Sets the per-rank-per-op drop probability.
    #[must_use]
    pub fn with_drop_rate(mut self, rate: f64) -> Self {
        self.drop_rate = rate;
        self
    }

    /// Sets the per-rank-per-op delay probability.
    #[must_use]
    pub fn with_delay_rate(mut self, rate: f64) -> Self {
        self.delay_rate = rate;
        self
    }

    /// Sets the per-rank-per-op payload-truncation probability.
    #[must_use]
    pub fn with_truncate_rate(mut self, rate: f64) -> Self {
        self.truncate_rate = rate;
        self
    }

    /// Sets the largest injectable delay, in virtual ticks.
    #[must_use]
    pub fn with_max_delay_ticks(mut self, ticks: u64) -> Self {
        self.max_delay_ticks = ticks;
        self
    }

    /// Sets the per-op timeout budget: an attempt whose injected delay
    /// exceeds this many ticks fails as [`CommError::TimedOut`].
    #[must_use]
    pub fn with_timeout_ticks(mut self, ticks: u64) -> Self {
        self.timeout_ticks = ticks;
        self
    }

    /// Adds a persistent rank stall beginning at `from_op`.
    #[must_use]
    pub fn with_stall(mut self, rank: u32, from_op: u64) -> Self {
        self.stalls.push(Stall { rank, from_op });
        self
    }

    /// The seed the schedule is derived from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan can never inject a fault.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.drop_rate == 0.0
            && self.delay_rate == 0.0
            && self.truncate_rate == 0.0
            && self.stalls.is_empty()
    }

    /// The deterministic fault (if any) that `rank` injects at `op_index`.
    /// A pure function: every rank computes the same answer.
    #[must_use]
    pub fn fault_for(&self, rank: u32, op_index: u64) -> Option<FaultKind> {
        if self
            .stalls
            .iter()
            .any(|s| s.rank == rank && op_index >= s.from_op)
        {
            return Some(FaultKind::Stall);
        }
        if self.drop_rate == 0.0 && self.delay_rate == 0.0 && self.truncate_rate == 0.0 {
            return None;
        }
        // One fresh stream per (rank, op) pair: draws are independent and
        // retries (fresh op indices) re-roll, so transient faults clear.
        let key = (u64::from(rank) << 48) ^ (op_index & 0xFFFF_FFFF_FFFF);
        let mut rng = SplitMix64::for_stream(self.seed ^ FAULT_DOMAIN, key);
        let roll = rng.unit_f64();
        if roll < self.drop_rate {
            Some(FaultKind::Drop)
        } else if roll < self.drop_rate + self.truncate_rate {
            Some(FaultKind::Truncate)
        } else if roll < self.drop_rate + self.truncate_rate + self.delay_rate {
            Some(FaultKind::Delay(
                1 + rng.bounded_u64(self.max_delay_ticks.max(1)),
            ))
        } else {
            None
        }
    }
}

/// A fault-injecting decorator over any [`Communicator`] backend.
///
/// The infallible [`Communicator`] methods panic if the plan injects a fault
/// for that attempt — wrap the stack in a [`crate::retry::RetryComm`] (the
/// distributed engines do this at entry) so faults are retried instead. With
/// an empty plan every call delegates straight through, making the decorator
/// bitwise transparent.
pub struct FaultComm<C> {
    inner: C,
    plan: FaultPlan,
    op_index: Cell<u64>,
    ticks: Cell<u64>,
    dropped_ops: Cell<u64>,
    dead: RefCell<Vec<u32>>,
}

impl<C: Communicator> FaultComm<C> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: C, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            op_index: Cell::new(0),
            ticks: Cell::new(0),
            dropped_ops: Cell::new(0),
            dead: RefCell::new(Vec::new()),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// The active schedule.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Ops attempted so far (each retry is a fresh attempt).
    #[must_use]
    pub fn op_index(&self) -> u64 {
        self.op_index.get()
    }

    fn self_dead(&self) -> bool {
        self.dead.borrow().contains(&self.inner.rank())
    }

    /// Advances the op counter and virtual clock, and decides — identically
    /// on every rank — whether this attempt fails. On `Err` the backend is
    /// *not* called, on any rank.
    fn check(&self, op: CollectiveOp, payload_bytes: u64) -> Result<(), CommError> {
        let t = self.op_index.get();
        self.op_index.set(t + 1);
        if self.plan.is_empty() {
            self.ticks.set(self.ticks.get() + 1);
            return Ok(());
        }
        let dead = self.dead.borrow();
        let mut stalled: Option<u32> = None;
        let mut first_fail: Option<CommError> = None;
        let mut delay = 0u64;
        let mut slowest = 0u32;
        for r in 0..self.inner.size() {
            if dead.contains(&r) {
                continue;
            }
            match self.plan.fault_for(r, t) {
                Some(FaultKind::Stall) if stalled.is_none() => stalled = Some(r),
                Some(FaultKind::Stall) => {}
                Some(FaultKind::Drop) => {
                    first_fail.get_or_insert(CommError::Dropped {
                        op,
                        rank: r,
                        op_index: t,
                    });
                }
                Some(FaultKind::Truncate) => {
                    first_fail.get_or_insert(CommError::Truncated {
                        op,
                        rank: r,
                        op_index: t,
                        expected_bytes: payload_bytes,
                        got_bytes: payload_bytes / 2,
                    });
                }
                Some(FaultKind::Delay(d)) if d > delay => {
                    delay = d;
                    slowest = r;
                }
                Some(FaultKind::Delay(_)) => {}
                None => {}
            }
        }
        drop(dead);
        self.ticks.set(self.ticks.get() + 1 + delay);
        // Stalls outrank transient faults so escalation blames the rank that
        // will actually never recover.
        let failure = match stalled {
            Some(rank) => Some(CommError::Stalled {
                op,
                rank,
                op_index: t,
            }),
            None => first_fail.or(if delay > self.plan.timeout_ticks {
                Some(CommError::TimedOut {
                    op,
                    rank: slowest,
                    op_index: t,
                    delay_ticks: delay,
                    budget_ticks: self.plan.timeout_ticks,
                })
            } else {
                None
            }),
        };
        match failure {
            Some(e) => {
                self.dropped_ops.set(self.dropped_ops.get() + 1);
                ripples_metrics::add(ripples_metrics::Metric::CommDroppedOps, 1);
                Err(e)
            }
            None => Ok(()),
        }
    }
}

/// Panic message for an unhandled injected fault on the infallible surface.
fn unhandled(e: &CommError) -> ! {
    panic!("unhandled comm fault (wrap the stack in RetryComm): {e}")
}

impl<C: Communicator> Communicator for FaultComm<C> {
    fn rank(&self) -> u32 {
        self.inner.rank()
    }

    fn size(&self) -> u32 {
        self.inner.size()
    }

    fn barrier(&self) {
        self.try_barrier().unwrap_or_else(|e| unhandled(&e));
    }

    fn all_reduce_sum_u64(&self, buf: &mut [u64]) {
        self.try_all_reduce_sum_u64(buf)
            .unwrap_or_else(|e| unhandled(&e));
    }

    fn all_reduce_sum_f64(&self, value: f64) -> f64 {
        self.try_all_reduce_sum_f64(value)
            .unwrap_or_else(|e| unhandled(&e))
    }

    fn all_reduce_max_f64(&self, value: f64) -> f64 {
        self.try_all_reduce_max_f64(value)
            .unwrap_or_else(|e| unhandled(&e))
    }

    fn broadcast_u64(&self, root: u32, value: u64) -> u64 {
        self.try_broadcast_u64(root, value)
            .unwrap_or_else(|e| unhandled(&e))
    }

    fn all_gather_u64(&self, value: u64) -> Vec<u64> {
        self.try_all_gather_u64(value)
            .unwrap_or_else(|e| unhandled(&e))
    }

    fn all_gather_u64_list(&self, items: &[u64]) -> Vec<Vec<u64>> {
        self.try_all_gather_u64_list(items)
            .unwrap_or_else(|e| unhandled(&e))
    }

    fn alltoallv_u64(&self, sends: &[Vec<u64>]) -> Vec<Vec<u64>> {
        self.try_alltoallv_u64(sends)
            .unwrap_or_else(|e| unhandled(&e))
    }

    fn post_exchange_u64(&self, sends: &[Vec<u64>]) -> ExchangeHandle {
        // Defer the transport (and the fault roll) to the wait: the post
        // must stay infallible, and deciding the fault here would burn an
        // op index at a point the retry layer cannot replay. The overlap is
        // lost under fault injection — correctness over concurrency.
        ExchangeHandle::Deferred(sends.to_vec())
    }

    fn wait_exchange(&self, handle: ExchangeHandle) -> Vec<Vec<u64>> {
        match handle {
            ExchangeHandle::Ready(result) => result,
            ExchangeHandle::Deferred(sends) => self.alltoallv_u64(&sends),
            // Not produced by this decorator's post, but a caller may hand
            // us a handle staged directly on the backend.
            ExchangeHandle::Staged(_) => self.inner.wait_exchange(handle),
        }
    }

    fn stats(&self) -> CommStats {
        self.inner.stats()
    }

    fn try_barrier(&self) -> Result<(), CommError> {
        self.check(CollectiveOp::Barrier, 0)?;
        self.inner.barrier();
        Ok(())
    }

    fn try_all_reduce_sum_u64(&self, buf: &mut [u64]) -> Result<(), CommError> {
        self.check(CollectiveOp::AllReduce, 8 * buf.len() as u64)?;
        if self.self_dead() {
            buf.fill(0);
        }
        self.inner.all_reduce_sum_u64(buf);
        Ok(())
    }

    fn try_all_reduce_sum_f64(&self, value: f64) -> Result<f64, CommError> {
        self.check(CollectiveOp::AllReduce, 8)?;
        let value = if self.self_dead() { 0.0 } else { value };
        Ok(self.inner.all_reduce_sum_f64(value))
    }

    fn try_all_reduce_max_f64(&self, value: f64) -> Result<f64, CommError> {
        self.check(CollectiveOp::AllReduce, 8)?;
        let value = if self.self_dead() {
            f64::NEG_INFINITY
        } else {
            value
        };
        Ok(self.inner.all_reduce_max_f64(value))
    }

    fn try_broadcast_u64(&self, root: u32, value: u64) -> Result<u64, CommError> {
        let attempt = self.op_index.get();
        self.check(CollectiveOp::Broadcast, 8)?;
        if self.dead.borrow().contains(&root) {
            return Err(CommError::DeadRoot {
                op: CollectiveOp::Broadcast,
                rank: root,
                op_index: attempt,
            });
        }
        Ok(self.inner.broadcast_u64(root, value))
    }

    fn try_all_gather_u64(&self, value: u64) -> Result<Vec<u64>, CommError> {
        self.check(CollectiveOp::AllGather, 8)?;
        let value = if self.self_dead() { 0 } else { value };
        Ok(self.inner.all_gather_u64(value))
    }

    fn try_all_gather_u64_list(&self, items: &[u64]) -> Result<Vec<Vec<u64>>, CommError> {
        self.check(CollectiveOp::AllGather, 8 * items.len() as u64)?;
        if self.self_dead() {
            Ok(self.inner.all_gather_u64_list(&[]))
        } else {
            Ok(self.inner.all_gather_u64_list(items))
        }
    }

    fn try_alltoallv_u64(&self, sends: &[Vec<u64>]) -> Result<Vec<Vec<u64>>, CommError> {
        let payload = 8 * sends.iter().map(|s| s.len() as u64).sum::<u64>();
        self.check(CollectiveOp::Exchange, payload)?;
        if self.self_dead() {
            // Zombie: keep the backend in lockstep but send nothing.
            let empty = vec![Vec::new(); sends.len()];
            Ok(self.inner.alltoallv_u64(&empty))
        } else {
            Ok(self.inner.alltoallv_u64(sends))
        }
    }

    fn dead_ranks(&self) -> Vec<u32> {
        self.dead.borrow().clone()
    }

    fn declare_dead(&self, rank: u32) {
        assert!(rank < self.inner.size(), "rank {rank} out of range");
        let mut dead = self.dead.borrow_mut();
        if dead.contains(&rank) {
            return;
        }
        assert!(
            dead.len() as u32 + 2 <= self.inner.size(),
            "cannot declare rank {rank} dead: it is the last live rank"
        );
        dead.push(rank);
        dead.sort_unstable();
    }

    fn clock_ticks(&self) -> u64 {
        self.ticks.get()
    }

    fn advance_clock(&self, ticks: u64) {
        self.ticks.set(self.ticks.get() + ticks);
    }

    fn health(&self) -> CommHealth {
        CommHealth {
            retries: 0,
            dropped_ops: self.dropped_ops.get(),
            ticks: self.ticks.get(),
            dead_ranks: self.dead.borrow().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selfcomm::SelfComm;
    use crate::thread::ThreadWorld;

    #[test]
    fn empty_plan_is_transparent() {
        let comm = FaultComm::new(SelfComm::new(), FaultPlan::none());
        let mut buf = vec![2u64, 4];
        comm.all_reduce_sum_u64(&mut buf);
        assert_eq!(buf, vec![2, 4]);
        assert_eq!(comm.all_gather_u64(7), vec![7]);
        assert_eq!(comm.broadcast_u64(0, 3), 3);
        comm.barrier();
        assert_eq!(comm.stats(), comm.inner().stats());
        assert!(comm.dead_ranks().is_empty());
        assert_eq!(comm.health().dropped_ops, 0);
    }

    #[test]
    fn fault_schedule_is_deterministic_and_rank_agnostic() {
        let plan = FaultPlan::chaos(42, 0.3);
        for rank in 0..4 {
            for op in 0..200 {
                assert_eq!(plan.fault_for(rank, op), plan.fault_for(rank, op));
            }
        }
        // A nonzero rate must actually fire somewhere in a window.
        let fired = (0..200).any(|op| plan.fault_for(0, op).is_some());
        assert!(fired, "0.3 chaos rate never fired in 200 ops");
    }

    #[test]
    fn stall_persists_until_rank_declared_dead() {
        let plan = FaultPlan::new(1).with_stall(0, 3);
        assert_eq!(plan.fault_for(0, 2), None);
        assert_eq!(plan.fault_for(0, 3), Some(FaultKind::Stall));
        assert_eq!(plan.fault_for(0, 999), Some(FaultKind::Stall));
        assert_eq!(plan.fault_for(1, 999), None);

        let world = ThreadWorld::new(2);
        let results = world.run(|c| {
            let comm = FaultComm::new(c, plan.clone());
            comm.barrier(); // ops 0..3 are clean
            comm.barrier();
            comm.barrier();
            let e = comm.try_barrier().expect_err("op 3 must stall");
            assert!(comm.try_barrier().is_err(), "stall must persist");
            comm.declare_dead(0);
            comm.try_barrier().expect("dead rank no longer faults");
            e
        });
        for e in results {
            assert!(matches!(e, CommError::Stalled { rank: 0, .. }));
            assert_eq!(e.op_index(), 3);
        }
    }

    #[test]
    fn failed_attempts_never_touch_the_backend() {
        // Drop rate 1: every attempt fails, so the inner backend must see
        // zero collective calls — this is what keeps ranks aligned.
        let comm = FaultComm::new(SelfComm::new(), FaultPlan::new(9).with_drop_rate(1.0));
        for _ in 0..5 {
            assert!(comm.try_barrier().is_err());
        }
        assert_eq!(comm.inner().stats().barrier_calls, 0);
        assert_eq!(comm.health().dropped_ops, 5);
    }

    #[test]
    fn delays_beyond_timeout_surface_as_timed_out() {
        let plan = FaultPlan::new(3)
            .with_delay_rate(1.0)
            .with_max_delay_ticks(10)
            .with_timeout_ticks(0);
        let comm = FaultComm::new(SelfComm::new(), plan);
        let e = comm.try_barrier().expect_err("every op delayed past 0");
        assert!(matches!(e, CommError::TimedOut { .. }));
        assert!(comm.clock_ticks() > 1, "delay must charge the clock");
    }

    #[test]
    fn dead_root_broadcast_is_not_retryable() {
        let world = ThreadWorld::new(2);
        let errs = world.run(|c| {
            let comm = FaultComm::new(c, FaultPlan::none());
            comm.declare_dead(1);
            comm.try_broadcast_u64(1, 5).expect_err("dead root")
        });
        for e in errs {
            assert!(matches!(e, CommError::DeadRoot { rank: 1, .. }));
            assert!(!e.is_retryable());
        }
    }

    #[test]
    fn zombie_contributions_are_neutralized() {
        let world = ThreadWorld::new(2);
        let results = world.run(|c| {
            let comm = FaultComm::new(c, FaultPlan::none());
            comm.declare_dead(1);
            let mut buf = vec![10u64];
            comm.all_reduce_sum_u64(&mut buf);
            let mx = comm.all_reduce_max_f64(f64::from(comm.rank()));
            let lists = comm.all_gather_u64_list(&[u64::from(comm.rank()); 2]);
            (buf[0], mx, lists)
        });
        for (sum, mx, lists) in results {
            assert_eq!(sum, 10, "dead rank's 10 must not be summed");
            assert_eq!(mx, 0.0, "dead rank's 1.0 must not win the max");
            assert_eq!(lists, vec![vec![0, 0], vec![]]);
        }
    }

    #[test]
    #[should_panic(expected = "last live rank")]
    fn killing_the_last_rank_panics() {
        let comm = FaultComm::new(SelfComm::new(), FaultPlan::none());
        comm.declare_dead(0);
    }

    #[test]
    #[should_panic(expected = "unhandled comm fault")]
    fn infallible_surface_panics_on_fault() {
        let comm = FaultComm::new(SelfComm::new(), FaultPlan::new(2).with_drop_rate(1.0));
        comm.barrier();
    }
}
