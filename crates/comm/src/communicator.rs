//! The communicator trait, its call/byte accounting, and the fault surface
//! ([`CommError`] + the fallible `try_*` collective variants).

use std::cell::Cell;
use std::fmt;

/// Counters describing the communication a rank has performed.
///
/// `bytes_moved` models the payload a real MPI rank would send for the same
/// call sequence under recursive doubling (`⌈log₂ p⌉` rounds of the full
/// payload for all-reduce/all-gather), which is what the α–β cost model
/// consumes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Number of `all_reduce_*` calls.
    pub allreduce_calls: u64,
    /// Number of `barrier` calls.
    pub barrier_calls: u64,
    /// Number of `broadcast_*` calls.
    pub broadcast_calls: u64,
    /// Number of `all_gather_*` calls.
    pub allgather_calls: u64,
    /// Number of logical `alltoallv_u64` exchanges (a posted exchange
    /// counts once, at the attempt that reaches the transport).
    pub exchange_calls: u64,
    /// Modeled payload bytes this rank would transmit under recursive
    /// doubling.
    pub bytes_moved: u64,
}

/// Internal mutable stats cell shared by the communicator implementations.
#[derive(Debug, Default)]
pub(crate) struct StatsCell {
    pub allreduce_calls: Cell<u64>,
    pub barrier_calls: Cell<u64>,
    pub broadcast_calls: Cell<u64>,
    pub allgather_calls: Cell<u64>,
    pub exchange_calls: Cell<u64>,
    pub bytes_moved: Cell<u64>,
}

impl StatsCell {
    pub(crate) fn snapshot(&self) -> CommStats {
        CommStats {
            allreduce_calls: self.allreduce_calls.get(),
            barrier_calls: self.barrier_calls.get(),
            broadcast_calls: self.broadcast_calls.get(),
            allgather_calls: self.allgather_calls.get(),
            exchange_calls: self.exchange_calls.get(),
            bytes_moved: self.bytes_moved.get(),
        }
    }

    /// Records the modeled cost of one recursive-doubling collective over
    /// `payload_bytes` in a world of `size` ranks.
    pub(crate) fn charge_log_rounds(&self, payload_bytes: u64, size: u32) {
        let rounds = u64::from(32 - size.saturating_sub(1).leading_zeros());
        self.bytes_moved
            .set(self.bytes_moved.get() + payload_bytes * rounds);
    }

    /// Records one logical exchange: direct point-to-point routing, so the
    /// payload is charged once (not log-rounds). Single-rank worlds move no
    /// bytes.
    pub(crate) fn charge_exchange(&self, payload_bytes: u64, size: u32) {
        self.exchange_calls.set(self.exchange_calls.get() + 1);
        if size > 1 {
            self.bytes_moved.set(self.bytes_moved.get() + payload_bytes);
        }
    }
}

/// Runs a collective body under a trace span carrying the payload byte
/// count, when tracing is enabled; otherwise the only cost is one relaxed
/// load and a branch.
pub(crate) fn traced<T>(
    name: ripples_trace::TraceName,
    payload_bytes: u64,
    f: impl FnOnce() -> T,
) -> T {
    // Every backend funnels every collective through here, so this is
    // also the single live-telemetry point for comm op/byte rates.
    if ripples_metrics::enabled() {
        ripples_metrics::add(ripples_metrics::Metric::CommOps, 1);
        ripples_metrics::add(ripples_metrics::Metric::CommBytes, payload_bytes);
    }
    if ripples_trace::enabled() {
        let t0 = std::time::Instant::now();
        let out = f();
        ripples_trace::complete(name, t0, payload_bytes, 0);
        out
    } else {
        f()
    }
}

/// Which collective operation an error refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollectiveOp {
    /// `barrier`.
    Barrier,
    /// `all_reduce_sum_u64` / `all_reduce_sum_f64` / `all_reduce_max_f64`.
    AllReduce,
    /// `broadcast_u64`.
    Broadcast,
    /// `all_gather_u64` / `all_gather_u64_list`.
    AllGather,
    /// `alltoallv_u64` / a posted frontier exchange.
    Exchange,
}

impl fmt::Display for CollectiveOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CollectiveOp::Barrier => "barrier",
            CollectiveOp::AllReduce => "allreduce",
            CollectiveOp::Broadcast => "broadcast",
            CollectiveOp::AllGather => "allgather",
            CollectiveOp::Exchange => "exchange",
        })
    }
}

/// A failed collective attempt, as surfaced by a fault-injecting (or, one
/// day, a real network) backend. Every variant names the op, the rank at
/// fault, and the decorator's op index so failures are attributable and —
/// with a seeded [`crate::FaultPlan`] — exactly reproducible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// The attempt was dropped by `rank` before completing.
    Dropped {
        /// The collective that failed.
        op: CollectiveOp,
        /// The rank whose message was lost.
        rank: u32,
        /// The fault decorator's op index for this attempt.
        op_index: u64,
    },
    /// `rank`'s payload arrived short; the collective result is unusable.
    Truncated {
        /// The collective that failed.
        op: CollectiveOp,
        /// The rank whose payload was cut short.
        rank: u32,
        /// The fault decorator's op index for this attempt.
        op_index: u64,
        /// Payload bytes the op required.
        expected_bytes: u64,
        /// Payload bytes that actually arrived.
        got_bytes: u64,
    },
    /// `rank` answered, but slower than the per-op tick budget.
    TimedOut {
        /// The collective that failed.
        op: CollectiveOp,
        /// The slowest rank.
        rank: u32,
        /// The fault decorator's op index for this attempt.
        op_index: u64,
        /// Virtual ticks the attempt took.
        delay_ticks: u64,
        /// The budget it exceeded.
        budget_ticks: u64,
    },
    /// `rank` is unresponsive (and will stay so until declared dead).
    Stalled {
        /// The collective that failed.
        op: CollectiveOp,
        /// The unresponsive rank.
        rank: u32,
        /// The fault decorator's op index for this attempt.
        op_index: u64,
    },
    /// A broadcast was requested from a root that is already dead. Not
    /// retryable: no retry schedule can resurrect the only data source.
    DeadRoot {
        /// The collective that failed.
        op: CollectiveOp,
        /// The dead root rank.
        rank: u32,
        /// The fault decorator's op index for this attempt.
        op_index: u64,
    },
}

impl CommError {
    /// The failed collective.
    #[must_use]
    pub fn op(&self) -> CollectiveOp {
        match self {
            CommError::Dropped { op, .. }
            | CommError::Truncated { op, .. }
            | CommError::TimedOut { op, .. }
            | CommError::Stalled { op, .. }
            | CommError::DeadRoot { op, .. } => *op,
        }
    }

    /// The rank at fault.
    #[must_use]
    pub fn rank(&self) -> u32 {
        match self {
            CommError::Dropped { rank, .. }
            | CommError::Truncated { rank, .. }
            | CommError::TimedOut { rank, .. }
            | CommError::Stalled { rank, .. }
            | CommError::DeadRoot { rank, .. } => *rank,
        }
    }

    /// The fault decorator's op index of the failed attempt.
    #[must_use]
    pub fn op_index(&self) -> u64 {
        match self {
            CommError::Dropped { op_index, .. }
            | CommError::Truncated { op_index, .. }
            | CommError::TimedOut { op_index, .. }
            | CommError::Stalled { op_index, .. }
            | CommError::DeadRoot { op_index, .. } => *op_index,
        }
    }

    /// Whether retrying the attempt can ever succeed.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        !matches!(self, CommError::DeadRoot { .. })
    }
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Dropped { op, rank, op_index } => {
                write!(f, "{op} dropped by rank {rank} at op {op_index}")
            }
            CommError::Truncated {
                op,
                rank,
                op_index,
                expected_bytes,
                got_bytes,
            } => write!(
                f,
                "{op} payload truncated by rank {rank} at op {op_index} \
                 ({got_bytes} of {expected_bytes} bytes arrived)"
            ),
            CommError::TimedOut {
                op,
                rank,
                op_index,
                delay_ticks,
                budget_ticks,
            } => write!(
                f,
                "{op} timed out waiting for rank {rank} at op {op_index} \
                 ({delay_ticks} ticks > budget {budget_ticks})"
            ),
            CommError::Stalled { op, rank, op_index } => {
                write!(f, "{op} stalled: rank {rank} unresponsive at op {op_index}")
            }
            CommError::DeadRoot { op, rank, op_index } => {
                write!(f, "{op} root rank {rank} is dead at op {op_index}")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// An in-flight nonblocking exchange, returned by
/// [`Communicator::post_exchange_u64`] and consumed by
/// [`Communicator::wait_exchange`].
///
/// Each backend picks the cheapest representation that preserves its
/// semantics:
///
/// * `Ready` — the result was computed eagerly at post time (the default
///   trait implementation, and `SelfComm`). Wait is free.
/// * `Deferred` — the *sends* are parked and the transport runs at wait
///   time. Fault-injecting decorators use this so a posted exchange's fault
///   roll happens at the wait — where the caller (or `RetryComm`) can retry
///   it — and never at the post, which must stay infallible.
/// * `Staged` — the sends were deposited into the backend's shared staging
///   area under the given exchange generation; the posting rank is free to
///   compute while peers deposit theirs. `ThreadComm` implements true
///   overlap this way.
#[derive(Debug)]
#[must_use = "a posted exchange must be waited on"]
pub enum ExchangeHandle {
    /// Result already available.
    Ready(Vec<Vec<u64>>),
    /// Sends parked; transport runs at wait time.
    Deferred(Vec<Vec<u64>>),
    /// Sends staged in the backend under this exchange generation.
    Staged(u64),
}

/// Robustness bookkeeping a communicator stack has accumulated: retry and
/// drop counters plus the set of ranks declared dead. Backends without a
/// fault surface report the all-zero default.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommHealth {
    /// Collective attempts that were retried after a fault.
    pub retries: u64,
    /// Collective attempts that failed (dropped, truncated, timed out, or
    /// stalled) before eventually succeeding or escalating.
    pub dropped_ops: u64,
    /// Deterministic virtual clock ticks consumed, delays included.
    pub ticks: u64,
    /// Ranks declared dead, ascending.
    pub dead_ranks: Vec<u32>,
}

/// The message-passing interface the distributed IMM algorithm requires.
///
/// Implementations must guarantee MPI collective semantics: every rank of
/// the world calls the same collectives in the same order, and a collective
/// returns on a rank only after the global result is available to it.
pub trait Communicator {
    /// This rank's id in `0..size()`.
    fn rank(&self) -> u32;

    /// The number of ranks in the world.
    fn size(&self) -> u32;

    /// Blocks until every rank has entered the barrier.
    fn barrier(&self);

    /// Element-wise global sum of `buf` across ranks; every rank's `buf`
    /// holds the result on return (`MPI_Allreduce(SUM)`).
    fn all_reduce_sum_u64(&self, buf: &mut [u64]);

    /// Global sum of a single `f64`.
    fn all_reduce_sum_f64(&self, value: f64) -> f64;

    /// Global maximum of a single `f64`.
    fn all_reduce_max_f64(&self, value: f64) -> f64;

    /// Broadcast `value` from `root` to every rank.
    fn broadcast_u64(&self, root: u32, value: u64) -> u64;

    /// Gathers one value per rank, returned in rank order on every rank.
    fn all_gather_u64(&self, value: u64) -> Vec<u64>;

    /// Gathers a variable-length `u64` list from every rank, returned in
    /// rank order on every rank (`MPI_Allgatherv`). The backbone of sparse
    /// counter aggregation in distributed seed selection.
    fn all_gather_u64_list(&self, items: &[u64]) -> Vec<Vec<u64>>;

    /// Personalized all-to-all over variable-length `u64` lists
    /// (`MPI_Alltoallv`): `sends[r]` goes to rank `r`; returns what every
    /// rank sent to *this* rank, in sender-rank order. The backbone of the
    /// vertex-cut engine's frontier exchange.
    ///
    /// The default implementation routes through
    /// [`Communicator::all_gather_u64_list`] over a `[len, payload…]*`
    /// flattening — correct for any backend, with allgather (not exchange)
    /// accounting; real backends override with direct routing.
    ///
    /// # Panics
    ///
    /// Panics if `sends.len() != size()`.
    fn alltoallv_u64(&self, sends: &[Vec<u64>]) -> Vec<Vec<u64>> {
        assert_eq!(
            sends.len(),
            self.size() as usize,
            "alltoallv needs one send list per rank"
        );
        let mut flat = Vec::with_capacity(sends.iter().map(|s| s.len() + 1).sum());
        for list in sends {
            flat.push(list.len() as u64);
            flat.extend_from_slice(list);
        }
        let gathered = self.all_gather_u64_list(&flat);
        let me = self.rank() as usize;
        gathered
            .iter()
            .map(|row| {
                let mut idx = 0usize;
                for dest in 0..self.size() as usize {
                    let len = row.get(idx).copied().unwrap_or(0) as usize;
                    idx += 1;
                    if dest == me {
                        return row[idx..idx + len].to_vec();
                    }
                    idx += len;
                }
                Vec::new()
            })
            .collect()
    }

    /// Posts a nonblocking [`Communicator::alltoallv_u64`]; the caller may
    /// compute between the post and the matching
    /// [`Communicator::wait_exchange`]. Every rank must post and wait its
    /// exchanges in the same order, exactly as with MPI nonblocking
    /// collectives.
    fn post_exchange_u64(&self, sends: &[Vec<u64>]) -> ExchangeHandle {
        ExchangeHandle::Ready(self.alltoallv_u64(sends))
    }

    /// Completes a posted exchange, returning what every rank sent to this
    /// rank, in sender-rank order.
    ///
    /// # Panics
    ///
    /// Panics on an [`ExchangeHandle::Staged`] handle: only the backend
    /// that staged it can complete it.
    fn wait_exchange(&self, handle: ExchangeHandle) -> Vec<Vec<u64>> {
        match handle {
            ExchangeHandle::Ready(result) => result,
            ExchangeHandle::Deferred(sends) => self.alltoallv_u64(&sends),
            ExchangeHandle::Staged(_) => {
                panic!("staged exchange waited on a backend without staging")
            }
        }
    }

    /// Communication counters recorded so far on this rank.
    fn stats(&self) -> CommStats;

    // --- Fallible variants -------------------------------------------------
    //
    // Reliable backends (SelfComm, ThreadWorld) keep the default
    // implementations, which simply cannot fail; fault-injecting decorators
    // override these, and the infallible methods above stay as wrappers so
    // existing call sites don't churn.

    /// Fallible [`Communicator::barrier`].
    ///
    /// # Errors
    ///
    /// Returns the injected [`CommError`] on a fault-injecting backend; the
    /// default implementation never fails.
    fn try_barrier(&self) -> Result<(), CommError> {
        self.barrier();
        Ok(())
    }

    /// Fallible [`Communicator::all_reduce_sum_u64`]. On `Err`, `buf` is
    /// untouched and the attempt performed no communication.
    ///
    /// # Errors
    ///
    /// Returns the injected [`CommError`] on a fault-injecting backend.
    fn try_all_reduce_sum_u64(&self, buf: &mut [u64]) -> Result<(), CommError> {
        self.all_reduce_sum_u64(buf);
        Ok(())
    }

    /// Fallible [`Communicator::all_reduce_sum_f64`].
    ///
    /// # Errors
    ///
    /// Returns the injected [`CommError`] on a fault-injecting backend.
    fn try_all_reduce_sum_f64(&self, value: f64) -> Result<f64, CommError> {
        Ok(self.all_reduce_sum_f64(value))
    }

    /// Fallible [`Communicator::all_reduce_max_f64`].
    ///
    /// # Errors
    ///
    /// Returns the injected [`CommError`] on a fault-injecting backend.
    fn try_all_reduce_max_f64(&self, value: f64) -> Result<f64, CommError> {
        Ok(self.all_reduce_max_f64(value))
    }

    /// Fallible [`Communicator::broadcast_u64`].
    ///
    /// # Errors
    ///
    /// Returns the injected [`CommError`] on a fault-injecting backend;
    /// notably [`CommError::DeadRoot`] (non-retryable) when `root` has been
    /// declared dead.
    fn try_broadcast_u64(&self, root: u32, value: u64) -> Result<u64, CommError> {
        Ok(self.broadcast_u64(root, value))
    }

    /// Fallible [`Communicator::all_gather_u64`].
    ///
    /// # Errors
    ///
    /// Returns the injected [`CommError`] on a fault-injecting backend.
    fn try_all_gather_u64(&self, value: u64) -> Result<Vec<u64>, CommError> {
        Ok(self.all_gather_u64(value))
    }

    /// Fallible [`Communicator::all_gather_u64_list`].
    ///
    /// # Errors
    ///
    /// Returns the injected [`CommError`] on a fault-injecting backend.
    fn try_all_gather_u64_list(&self, items: &[u64]) -> Result<Vec<Vec<u64>>, CommError> {
        Ok(self.all_gather_u64_list(items))
    }

    /// Fallible [`Communicator::alltoallv_u64`]. On `Err` the attempt
    /// performed no communication.
    ///
    /// # Errors
    ///
    /// Returns the injected [`CommError`] on a fault-injecting backend.
    fn try_alltoallv_u64(&self, sends: &[Vec<u64>]) -> Result<Vec<Vec<u64>>, CommError> {
        Ok(self.alltoallv_u64(sends))
    }

    // --- Degradation hooks -------------------------------------------------

    /// Ranks declared dead so far, ascending; empty on reliable backends.
    fn dead_ranks(&self) -> Vec<u32> {
        Vec::new()
    }

    /// Declares `rank` dead: its future payload contributions are
    /// neutralized and it no longer generates faults. A no-op on reliable
    /// backends.
    fn declare_dead(&self, _rank: u32) {}

    /// The deterministic virtual clock (ticks consumed by ops, injected
    /// delays, and retry backoff). Always 0 on reliable backends.
    fn clock_ticks(&self) -> u64 {
        0
    }

    /// Advances the virtual clock (retry layers charge their backoff here).
    /// A no-op on reliable backends.
    fn advance_clock(&self, _ticks: u64) {}

    /// Robustness counters accumulated by this communicator stack.
    fn health(&self) -> CommHealth {
        CommHealth::default()
    }
}

/// Forwarding impl so decorators can wrap borrowed backends (e.g.
/// `FaultComm<&ThreadComm>` inside a `ThreadWorld::run` closure).
impl<C: Communicator + ?Sized> Communicator for &C {
    fn rank(&self) -> u32 {
        (**self).rank()
    }

    fn size(&self) -> u32 {
        (**self).size()
    }

    fn barrier(&self) {
        (**self).barrier();
    }

    fn all_reduce_sum_u64(&self, buf: &mut [u64]) {
        (**self).all_reduce_sum_u64(buf);
    }

    fn all_reduce_sum_f64(&self, value: f64) -> f64 {
        (**self).all_reduce_sum_f64(value)
    }

    fn all_reduce_max_f64(&self, value: f64) -> f64 {
        (**self).all_reduce_max_f64(value)
    }

    fn broadcast_u64(&self, root: u32, value: u64) -> u64 {
        (**self).broadcast_u64(root, value)
    }

    fn all_gather_u64(&self, value: u64) -> Vec<u64> {
        (**self).all_gather_u64(value)
    }

    fn all_gather_u64_list(&self, items: &[u64]) -> Vec<Vec<u64>> {
        (**self).all_gather_u64_list(items)
    }

    fn alltoallv_u64(&self, sends: &[Vec<u64>]) -> Vec<Vec<u64>> {
        (**self).alltoallv_u64(sends)
    }

    fn post_exchange_u64(&self, sends: &[Vec<u64>]) -> ExchangeHandle {
        (**self).post_exchange_u64(sends)
    }

    fn wait_exchange(&self, handle: ExchangeHandle) -> Vec<Vec<u64>> {
        (**self).wait_exchange(handle)
    }

    fn stats(&self) -> CommStats {
        (**self).stats()
    }

    fn try_barrier(&self) -> Result<(), CommError> {
        (**self).try_barrier()
    }

    fn try_all_reduce_sum_u64(&self, buf: &mut [u64]) -> Result<(), CommError> {
        (**self).try_all_reduce_sum_u64(buf)
    }

    fn try_all_reduce_sum_f64(&self, value: f64) -> Result<f64, CommError> {
        (**self).try_all_reduce_sum_f64(value)
    }

    fn try_all_reduce_max_f64(&self, value: f64) -> Result<f64, CommError> {
        (**self).try_all_reduce_max_f64(value)
    }

    fn try_broadcast_u64(&self, root: u32, value: u64) -> Result<u64, CommError> {
        (**self).try_broadcast_u64(root, value)
    }

    fn try_all_gather_u64(&self, value: u64) -> Result<Vec<u64>, CommError> {
        (**self).try_all_gather_u64(value)
    }

    fn try_all_gather_u64_list(&self, items: &[u64]) -> Result<Vec<Vec<u64>>, CommError> {
        (**self).try_all_gather_u64_list(items)
    }

    fn try_alltoallv_u64(&self, sends: &[Vec<u64>]) -> Result<Vec<Vec<u64>>, CommError> {
        (**self).try_alltoallv_u64(sends)
    }

    fn dead_ranks(&self) -> Vec<u32> {
        (**self).dead_ranks()
    }

    fn declare_dead(&self, rank: u32) {
        (**self).declare_dead(rank);
    }

    fn clock_ticks(&self) -> u64 {
        (**self).clock_ticks()
    }

    fn advance_clock(&self, ticks: u64) {
        (**self).advance_clock(ticks);
    }

    fn health(&self) -> CommHealth {
        (**self).health()
    }
}
