//! The communicator trait and its call/byte accounting.

use std::cell::Cell;

/// Counters describing the communication a rank has performed.
///
/// `bytes_moved` models the payload a real MPI rank would send for the same
/// call sequence under recursive doubling (`⌈log₂ p⌉` rounds of the full
/// payload for all-reduce/all-gather), which is what the α–β cost model
/// consumes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Number of `all_reduce_*` calls.
    pub allreduce_calls: u64,
    /// Number of `barrier` calls.
    pub barrier_calls: u64,
    /// Number of `broadcast_*` calls.
    pub broadcast_calls: u64,
    /// Number of `all_gather_*` calls.
    pub allgather_calls: u64,
    /// Modeled payload bytes this rank would transmit under recursive
    /// doubling.
    pub bytes_moved: u64,
}

/// Internal mutable stats cell shared by the communicator implementations.
#[derive(Debug, Default)]
pub(crate) struct StatsCell {
    pub allreduce_calls: Cell<u64>,
    pub barrier_calls: Cell<u64>,
    pub broadcast_calls: Cell<u64>,
    pub allgather_calls: Cell<u64>,
    pub bytes_moved: Cell<u64>,
}

impl StatsCell {
    pub(crate) fn snapshot(&self) -> CommStats {
        CommStats {
            allreduce_calls: self.allreduce_calls.get(),
            barrier_calls: self.barrier_calls.get(),
            broadcast_calls: self.broadcast_calls.get(),
            allgather_calls: self.allgather_calls.get(),
            bytes_moved: self.bytes_moved.get(),
        }
    }

    /// Records the modeled cost of one recursive-doubling collective over
    /// `payload_bytes` in a world of `size` ranks.
    pub(crate) fn charge_log_rounds(&self, payload_bytes: u64, size: u32) {
        let rounds = u64::from(32 - size.saturating_sub(1).leading_zeros());
        self.bytes_moved
            .set(self.bytes_moved.get() + payload_bytes * rounds);
    }
}

/// Runs a collective body under a trace span carrying the payload byte
/// count, when tracing is enabled; otherwise the only cost is one relaxed
/// load and a branch.
pub(crate) fn traced<T>(
    name: ripples_trace::TraceName,
    payload_bytes: u64,
    f: impl FnOnce() -> T,
) -> T {
    if ripples_trace::enabled() {
        let t0 = std::time::Instant::now();
        let out = f();
        ripples_trace::complete(name, t0, payload_bytes, 0);
        out
    } else {
        f()
    }
}

/// The message-passing interface the distributed IMM algorithm requires.
///
/// Implementations must guarantee MPI collective semantics: every rank of
/// the world calls the same collectives in the same order, and a collective
/// returns on a rank only after the global result is available to it.
pub trait Communicator {
    /// This rank's id in `0..size()`.
    fn rank(&self) -> u32;

    /// The number of ranks in the world.
    fn size(&self) -> u32;

    /// Blocks until every rank has entered the barrier.
    fn barrier(&self);

    /// Element-wise global sum of `buf` across ranks; every rank's `buf`
    /// holds the result on return (`MPI_Allreduce(SUM)`).
    fn all_reduce_sum_u64(&self, buf: &mut [u64]);

    /// Global sum of a single `f64`.
    fn all_reduce_sum_f64(&self, value: f64) -> f64;

    /// Global maximum of a single `f64`.
    fn all_reduce_max_f64(&self, value: f64) -> f64;

    /// Broadcast `value` from `root` to every rank.
    fn broadcast_u64(&self, root: u32, value: u64) -> u64;

    /// Gathers one value per rank, returned in rank order on every rank.
    fn all_gather_u64(&self, value: u64) -> Vec<u64>;

    /// Gathers a variable-length `u64` list from every rank, returned in
    /// rank order on every rank (`MPI_Allgatherv`). The backbone of sparse
    /// counter aggregation in distributed seed selection.
    fn all_gather_u64_list(&self, items: &[u64]) -> Vec<Vec<u64>>;

    /// Communication counters recorded so far on this rank.
    fn stats(&self) -> CommStats;
}
