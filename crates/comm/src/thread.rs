//! In-process multi-rank world: one thread per rank, shared-memory
//! collectives.
//!
//! Collectives follow a deposit → barrier → combine → barrier protocol:
//! each rank owns one deposit slot, so the only shared-state contention is
//! the slot vector's lock around a single write or read pass. The trailing
//! barrier keeps a fast rank from starting the *next* collective (and
//! overwriting its slot) while a slow rank is still combining the current
//! one. This is deliberately the simplest protocol that is obviously
//! correct; modeled costs for real networks come from
//! [`crate::costmodel`], not from timing this loopback implementation.

use crate::communicator::{traced, CommStats, Communicator, ExchangeHandle, StatsCell};
use parking_lot::{Condvar, Mutex};
use ripples_trace::TraceName;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::Arc;

struct BarrierState {
    count: u32,
    generation: u64,
}

/// One in-flight exchange generation: each sender deposits its full send
/// matrix; receivers extract their column. Unlike the barriered collectives,
/// staging is keyed by generation so several exchanges can be in flight at
/// once — a fast rank may deposit generation `g+1` while a slow rank is
/// still collecting generation `g`.
struct ExchangeSlot {
    deposits: Vec<Option<Vec<Vec<u64>>>>,
    reads_left: u32,
}

struct Shared {
    size: u32,
    barrier: Mutex<BarrierState>,
    barrier_cv: Condvar,
    u64_slots: Mutex<Vec<Vec<u64>>>,
    f64_slots: Mutex<Vec<f64>>,
    exchange: Mutex<HashMap<u64, ExchangeSlot>>,
    exchange_cv: Condvar,
}

impl Shared {
    fn new(size: u32) -> Self {
        Self {
            size,
            barrier: Mutex::new(BarrierState {
                count: 0,
                generation: 0,
            }),
            barrier_cv: Condvar::new(),
            u64_slots: Mutex::new(vec![Vec::new(); size as usize]),
            f64_slots: Mutex::new(vec![0.0; size as usize]),
            exchange: Mutex::new(HashMap::new()),
            exchange_cv: Condvar::new(),
        }
    }

    fn barrier_wait(&self) {
        let mut st = self.barrier.lock();
        let gen = st.generation;
        st.count += 1;
        if st.count == self.size {
            st.count = 0;
            st.generation += 1;
            drop(st);
            self.barrier_cv.notify_all();
        } else {
            while st.generation == gen {
                self.barrier_cv.wait(&mut st);
            }
        }
    }
}

/// A world of `size` in-process ranks.
///
/// ```
/// use ripples_comm::{Communicator, ThreadWorld};
///
/// let world = ThreadWorld::new(4);
/// let sums = world.run(|comm| {
///     let mut buf = [u64::from(comm.rank())];
///     comm.all_reduce_sum_u64(&mut buf);
///     buf[0]
/// });
/// assert_eq!(sums, vec![6, 6, 6, 6]); // 0+1+2+3 on every rank
/// ```
pub struct ThreadWorld {
    size: u32,
}

impl ThreadWorld {
    /// Creates a world descriptor for `size` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    #[must_use]
    pub fn new(size: u32) -> Self {
        assert!(size > 0, "world must have at least one rank");
        Self { size }
    }

    /// The number of ranks.
    #[must_use]
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Runs `body` on every rank concurrently and returns the per-rank
    /// results in rank order.
    ///
    /// Every rank must make the same sequence of collective calls, exactly
    /// as with MPI; violating that deadlocks, as it would under MPI.
    pub fn run<F, R>(&self, body: F) -> Vec<R>
    where
        F: Fn(&ThreadComm) -> R + Sync,
        R: Send,
    {
        let shared = Arc::new(Shared::new(self.size));
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.size)
                .map(|rank| {
                    let shared = Arc::clone(&shared);
                    let body = &body;
                    scope.spawn(move || {
                        let comm = ThreadComm {
                            rank,
                            shared,
                            stats: StatsCell::default(),
                            exchange_gen: Cell::new(0),
                        };
                        body(&comm)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }
}

/// One rank's endpoint in a [`ThreadWorld`].
pub struct ThreadComm {
    rank: u32,
    shared: Arc<Shared>,
    stats: StatsCell,
    /// Next exchange generation this rank will post. Per-rank local, yet
    /// globally consistent: every rank issues the same collective sequence
    /// (the MPI contract), so rank-local counter values agree.
    exchange_gen: Cell<u64>,
}

impl Communicator for ThreadComm {
    fn rank(&self) -> u32 {
        self.rank
    }

    fn size(&self) -> u32 {
        self.shared.size
    }

    fn barrier(&self) {
        self.stats
            .barrier_calls
            .set(self.stats.barrier_calls.get() + 1);
        traced(TraceName::CommBarrier, 0, || self.shared.barrier_wait());
    }

    fn all_reduce_sum_u64(&self, buf: &mut [u64]) {
        self.stats
            .allreduce_calls
            .set(self.stats.allreduce_calls.get() + 1);
        self.stats
            .charge_log_rounds(8 * buf.len() as u64, self.shared.size);
        traced(TraceName::CommAllReduce, 8 * buf.len() as u64, || {
            if self.shared.size == 1 {
                return;
            }
            {
                let mut slots = self.shared.u64_slots.lock();
                let slot = &mut slots[self.rank as usize];
                slot.clear();
                slot.extend_from_slice(buf);
            }
            self.shared.barrier_wait();
            {
                let slots = self.shared.u64_slots.lock();
                buf.fill(0);
                for contribution in slots.iter() {
                    debug_assert_eq!(contribution.len(), buf.len(), "ragged all-reduce");
                    for (acc, &x) in buf.iter_mut().zip(contribution) {
                        *acc += x;
                    }
                }
            }
            self.shared.barrier_wait();
        });
    }

    fn all_reduce_sum_f64(&self, value: f64) -> f64 {
        self.reduce_f64(value, |acc, x| acc + x, 0.0)
    }

    fn all_reduce_max_f64(&self, value: f64) -> f64 {
        self.reduce_f64(value, f64::max, f64::NEG_INFINITY)
    }

    fn broadcast_u64(&self, root: u32, value: u64) -> u64 {
        assert!(root < self.shared.size, "root {root} out of range");
        self.stats
            .broadcast_calls
            .set(self.stats.broadcast_calls.get() + 1);
        self.stats.charge_log_rounds(8, self.shared.size);
        traced(TraceName::CommBroadcast, 8, || {
            if self.shared.size == 1 {
                return value;
            }
            if self.rank == root {
                let mut slots = self.shared.u64_slots.lock();
                slots[root as usize].clear();
                slots[root as usize].push(value);
            }
            self.shared.barrier_wait();
            let result = {
                let slots = self.shared.u64_slots.lock();
                slots[root as usize][0]
            };
            self.shared.barrier_wait();
            result
        })
    }

    fn all_gather_u64(&self, value: u64) -> Vec<u64> {
        self.stats
            .allgather_calls
            .set(self.stats.allgather_calls.get() + 1);
        self.stats
            .charge_log_rounds(8 * u64::from(self.shared.size), self.shared.size);
        traced(
            TraceName::CommAllGather,
            8 * u64::from(self.shared.size),
            || {
                if self.shared.size == 1 {
                    return vec![value];
                }
                {
                    let mut slots = self.shared.u64_slots.lock();
                    let slot = &mut slots[self.rank as usize];
                    slot.clear();
                    slot.push(value);
                }
                self.shared.barrier_wait();
                let result: Vec<u64> = {
                    let slots = self.shared.u64_slots.lock();
                    slots.iter().map(|s| s[0]).collect()
                };
                self.shared.barrier_wait();
                result
            },
        )
    }

    fn all_gather_u64_list(&self, items: &[u64]) -> Vec<Vec<u64>> {
        self.stats
            .allgather_calls
            .set(self.stats.allgather_calls.get() + 1);
        // Modeled volume: every rank ends up holding every list.
        self.stats
            .charge_log_rounds(8 * items.len() as u64, self.shared.size);
        traced(TraceName::CommAllGather, 8 * items.len() as u64, || {
            if self.shared.size == 1 {
                return vec![items.to_vec()];
            }
            {
                let mut slots = self.shared.u64_slots.lock();
                let slot = &mut slots[self.rank as usize];
                slot.clear();
                slot.extend_from_slice(items);
            }
            self.shared.barrier_wait();
            let result: Vec<Vec<u64>> = {
                let slots = self.shared.u64_slots.lock();
                slots.iter().cloned().collect()
            };
            self.shared.barrier_wait();
            result
        })
    }

    fn alltoallv_u64(&self, sends: &[Vec<u64>]) -> Vec<Vec<u64>> {
        let handle = self.post_exchange_u64(sends);
        self.wait_exchange(handle)
    }

    fn post_exchange_u64(&self, sends: &[Vec<u64>]) -> ExchangeHandle {
        assert_eq!(
            sends.len(),
            self.shared.size as usize,
            "alltoallv needs one send list per rank"
        );
        let payload = 8 * sends.iter().map(|s| s.len() as u64).sum::<u64>();
        self.stats.charge_exchange(payload, self.shared.size);
        traced(TraceName::CommExchange, payload, || {
            if self.shared.size == 1 {
                return ExchangeHandle::Ready(vec![sends[0].clone()]);
            }
            let generation = self.exchange_gen.get();
            self.exchange_gen.set(generation + 1);
            {
                let mut slots = self.shared.exchange.lock();
                let slot = slots.entry(generation).or_insert_with(|| ExchangeSlot {
                    deposits: vec![None; self.shared.size as usize],
                    reads_left: self.shared.size,
                });
                slot.deposits[self.rank as usize] = Some(sends.to_vec());
            }
            self.shared.exchange_cv.notify_all();
            ExchangeHandle::Staged(generation)
        })
    }

    fn wait_exchange(&self, handle: ExchangeHandle) -> Vec<Vec<u64>> {
        match handle {
            ExchangeHandle::Ready(result) => result,
            ExchangeHandle::Deferred(sends) => self.alltoallv_u64(&sends),
            ExchangeHandle::Staged(generation) => {
                let mut slots = self.shared.exchange.lock();
                while !slots
                    .get(&generation)
                    .is_some_and(|s| s.deposits.iter().all(Option::is_some))
                {
                    self.shared.exchange_cv.wait(&mut slots);
                }
                let slot = slots.get_mut(&generation).expect("deposit checked above");
                let result: Vec<Vec<u64>> = slot
                    .deposits
                    .iter()
                    .map(|d| d.as_ref().expect("complete")[self.rank as usize].clone())
                    .collect();
                // Last reader retires the generation; a rank only waits
                // after posting, so no rank can still need this slot.
                slot.reads_left -= 1;
                if slot.reads_left == 0 {
                    slots.remove(&generation);
                }
                result
            }
        }
    }

    fn stats(&self) -> CommStats {
        self.stats.snapshot()
    }
}

impl ThreadComm {
    fn reduce_f64(&self, value: f64, op: impl Fn(f64, f64) -> f64, identity: f64) -> f64 {
        self.stats
            .allreduce_calls
            .set(self.stats.allreduce_calls.get() + 1);
        self.stats.charge_log_rounds(8, self.shared.size);
        traced(TraceName::CommAllReduce, 8, || {
            if self.shared.size == 1 {
                return value;
            }
            {
                let mut slots = self.shared.f64_slots.lock();
                slots[self.rank as usize] = value;
            }
            self.shared.barrier_wait();
            let result = {
                let slots = self.shared.f64_slots.lock();
                slots.iter().copied().fold(identity, op)
            };
            self.shared.barrier_wait();
            result
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_distinct_and_complete() {
        let world = ThreadWorld::new(4);
        let mut ranks = world.run(|c| c.rank());
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn all_reduce_sums_vectors() {
        let world = ThreadWorld::new(5);
        let results = world.run(|c| {
            let mut buf = vec![u64::from(c.rank()), 1, 100 * u64::from(c.rank())];
            c.all_reduce_sum_u64(&mut buf);
            buf
        });
        // Sum of ranks 0..5 = 10; ones = 5; hundreds = 1000.
        for r in results {
            assert_eq!(r, vec![10, 5, 1000]);
        }
    }

    #[test]
    fn repeated_all_reduce_is_isolated() {
        // Back-to-back collectives must not bleed into each other.
        let world = ThreadWorld::new(3);
        let results = world.run(|c| {
            let mut total = Vec::new();
            for round in 0..10u64 {
                let mut buf = vec![round + u64::from(c.rank())];
                c.all_reduce_sum_u64(&mut buf);
                total.push(buf[0]);
            }
            total
        });
        for r in results {
            let expect: Vec<u64> = (0..10).map(|round| 3 * round + 3).collect();
            assert_eq!(r, expect);
        }
    }

    #[test]
    fn f64_sum_and_max() {
        let world = ThreadWorld::new(4);
        let results = world.run(|c| {
            let s = c.all_reduce_sum_f64(f64::from(c.rank()) + 0.5);
            let m = c.all_reduce_max_f64(f64::from(c.rank()));
            (s, m)
        });
        for (s, m) in results {
            assert!((s - 8.0).abs() < 1e-12); // 0.5+1.5+2.5+3.5
            assert_eq!(m, 3.0);
        }
    }

    #[test]
    fn broadcast_from_each_root() {
        let world = ThreadWorld::new(3);
        let results = world.run(|c| {
            let mut got = Vec::new();
            for root in 0..3 {
                let v = c.broadcast_u64(root, u64::from(c.rank()) * 10 + 7);
                got.push(v);
            }
            got
        });
        for r in results {
            assert_eq!(r, vec![7, 17, 27]);
        }
    }

    #[test]
    fn all_gather_lists_in_rank_order() {
        let world = ThreadWorld::new(3);
        let results = world.run(|c| {
            let mine: Vec<u64> = (0..=u64::from(c.rank())).collect();
            c.all_gather_u64_list(&mine)
        });
        for r in results {
            assert_eq!(r, vec![vec![0], vec![0, 1], vec![0, 1, 2]]);
        }
    }

    #[test]
    fn all_gather_empty_lists() {
        let world = ThreadWorld::new(2);
        let results = world.run(|c| {
            let mine: Vec<u64> = if c.rank() == 0 { vec![7] } else { Vec::new() };
            c.all_gather_u64_list(&mine)
        });
        for r in results {
            assert_eq!(r, vec![vec![7], vec![]]);
        }
    }

    #[test]
    fn all_gather_in_rank_order() {
        let world = ThreadWorld::new(4);
        let results = world.run(|c| c.all_gather_u64(u64::from(c.rank()) * u64::from(c.rank())));
        for r in results {
            assert_eq!(r, vec![0, 1, 4, 9]);
        }
    }

    #[test]
    fn alltoallv_routes_every_pair() {
        let world = ThreadWorld::new(3);
        let results = world.run(|c| {
            // sends[d] = [rank*10 + d]; receiver d gets column d.
            let sends: Vec<Vec<u64>> = (0..3).map(|d| vec![u64::from(c.rank()) * 10 + d]).collect();
            c.alltoallv_u64(&sends)
        });
        for (r, got) in results.iter().enumerate() {
            let expect: Vec<Vec<u64>> = (0..3u64).map(|s| vec![s * 10 + r as u64]).collect();
            assert_eq!(got, &expect, "rank {r}");
        }
    }

    #[test]
    fn posted_exchanges_overlap_and_stay_isolated() {
        // Two exchanges in flight at once; each drains to its own payloads.
        let world = ThreadWorld::new(4);
        let results = world.run(|c| {
            let me = u64::from(c.rank());
            let a: Vec<Vec<u64>> = (0..4).map(|d| vec![100 + me * 10 + d]).collect();
            let b: Vec<Vec<u64>> = (0..4).map(|d| vec![200 + me * 10 + d, me]).collect();
            let ha = c.post_exchange_u64(&a);
            let hb = c.post_exchange_u64(&b);
            (c.wait_exchange(ha), c.wait_exchange(hb))
        });
        for (r, (ra, rb)) in results.iter().enumerate() {
            let r = r as u64;
            let ea: Vec<Vec<u64>> = (0..4).map(|s| vec![100 + s * 10 + r]).collect();
            let eb: Vec<Vec<u64>> = (0..4).map(|s| vec![200 + s * 10 + r, s]).collect();
            assert_eq!(ra, &ea, "first exchange, rank {r}");
            assert_eq!(rb, &eb, "second exchange, rank {r}");
        }
    }

    #[test]
    fn exchange_charges_direct_bytes_once() {
        let world = ThreadWorld::new(4);
        let stats = world.run(|c| {
            // 4 lists × 2 entries = 64 payload bytes, charged once (direct
            // routing), unlike the log-rounds collectives.
            let sends: Vec<Vec<u64>> = (0..4).map(|d| vec![d, d]).collect();
            let _ = c.alltoallv_u64(&sends);
            c.stats()
        });
        for s in stats {
            assert_eq!(s.exchange_calls, 1);
            assert_eq!(s.bytes_moved, 64);
        }
    }

    #[test]
    fn single_rank_exchange_is_identity_and_free() {
        let world = ThreadWorld::new(1);
        let results = world.run(|c| {
            let h = c.post_exchange_u64(&[vec![9, 8, 7]]);
            (c.wait_exchange(h), c.stats())
        });
        let (got, stats) = &results[0];
        assert_eq!(got, &vec![vec![9, 8, 7]]);
        assert_eq!(stats.exchange_calls, 1);
        assert_eq!(stats.bytes_moved, 0);
    }

    #[test]
    fn stats_account_calls_and_bytes() {
        let world = ThreadWorld::new(4);
        let stats = world.run(|c| {
            let mut buf = vec![0u64; 16];
            c.all_reduce_sum_u64(&mut buf);
            c.barrier();
            c.stats()
        });
        for s in stats {
            assert_eq!(s.allreduce_calls, 1);
            // barrier() once explicitly; collectives' internal barriers are
            // not user-visible calls.
            assert_eq!(s.barrier_calls, 1);
            // 16 u64 = 128 bytes, log2(4) = 2 rounds.
            assert_eq!(s.bytes_moved, 256);
        }
    }

    #[test]
    fn single_rank_world_short_circuits() {
        let world = ThreadWorld::new(1);
        let results = world.run(|c| {
            let mut buf = vec![42u64];
            c.all_reduce_sum_u64(&mut buf);
            (buf[0], c.all_gather_u64(5), c.broadcast_u64(0, 3))
        });
        assert_eq!(results[0], (42, vec![5], 3));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = ThreadWorld::new(0);
    }

    #[test]
    fn heavy_concurrent_reduction_stress() {
        // Many rounds over a larger world to shake out barrier races.
        let world = ThreadWorld::new(8);
        let results = world.run(|c| {
            let mut acc = 0u64;
            for round in 0..50u64 {
                let mut buf = vec![u64::from(c.rank()) + round];
                c.all_reduce_sum_u64(&mut buf);
                acc += buf[0];
            }
            acc
        });
        // Σ_round (Σ_ranks rank + 8*round) = Σ_round (28 + 8 round)
        let expect: u64 = (0..50).map(|r| 28 + 8 * r).sum();
        for r in results {
            assert_eq!(r, expect);
        }
    }
}
