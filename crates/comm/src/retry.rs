//! Retry with bounded exponential backoff and rank-death escalation.
//!
//! [`RetryComm`] turns the fallible `try_*` surface of a fault-injecting
//! stack back into the infallible [`Communicator`] interface the engines
//! consume: every failed attempt is retried after a deterministic,
//! tick-based backoff (no sleeping — the stack's virtual clock is charged
//! instead). When an op exhausts its attempt or tick budget, the rank the
//! last error blames is declared dead on the underlying stack and the op
//! starts over against the shrunken set of fault sources; the engines then
//! degrade gracefully (see `dist.rs`'s θ re-globalization) instead of
//! crashing.
//!
//! Because fault decisions are globally computable (see [`crate::fault`]),
//! every rank observes the same failures at the same op indices and retries
//! in lockstep: op counters never skew across ranks, and the backend only
//! ever sees fully-participated collectives.
//!
//! Retries and deaths are visible on the PR-2 tracer as `comm-retry` and
//! `rank-dead` marks when tracing is enabled.

use crate::communicator::{CommError, CommHealth, CommStats, Communicator, ExchangeHandle};
use ripples_trace::TraceName;
use std::cell::Cell;

/// Deterministic retry budgets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Failed attempts per op before the blamed rank is declared dead.
    pub max_attempts: u32,
    /// Backoff after the first failure, in virtual ticks.
    pub base_backoff_ticks: u64,
    /// Backoff ceiling, in virtual ticks.
    pub max_backoff_ticks: u64,
    /// Total virtual ticks one op may consume before escalation.
    pub op_timeout_ticks: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            base_backoff_ticks: 1,
            max_backoff_ticks: 64,
            op_timeout_ticks: 4096,
        }
    }
}

impl RetryPolicy {
    /// The backoff charged after failed attempt number `attempt` (0-based):
    /// `base · 2^attempt`, capped at the ceiling.
    #[must_use]
    pub fn backoff_ticks(&self, attempt: u32) -> u64 {
        self.base_backoff_ticks
            .saturating_shl(attempt.min(32))
            .min(self.max_backoff_ticks)
    }
}

/// Saturating left shift (`u64::checked_shl` clamps the shift, not the
/// value).
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        if self == 0 {
            return 0;
        }
        if shift >= self.leading_zeros() {
            u64::MAX
        } else {
            self << shift
        }
    }
}

/// Infallible facade over a fallible communicator stack: retries faults in
/// lockstep, escalates persistent ones to rank death.
///
/// The distributed engines wrap whatever communicator they are handed in a
/// `RetryComm` at entry; over a reliable backend every attempt succeeds on
/// the first try and the wrapper is free.
pub struct RetryComm<C> {
    inner: C,
    policy: RetryPolicy,
    retries: Cell<u64>,
}

impl<C: Communicator> RetryComm<C> {
    /// Wraps `inner` under `policy`.
    pub fn new(inner: C, policy: RetryPolicy) -> Self {
        Self {
            inner,
            policy,
            retries: Cell::new(0),
        }
    }

    /// Wraps `inner` under [`RetryPolicy::default`].
    pub fn with_defaults(inner: C) -> Self {
        Self::new(inner, RetryPolicy::default())
    }

    /// The wrapped stack.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// The active policy.
    #[must_use]
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Failed attempts retried so far on this rank.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries.get()
    }

    /// Drives one logical op to completion. Every rank runs the identical
    /// loop: fault decisions are globally computable, so all ranks fail,
    /// back off, and (on exhaustion) declare the same rank dead at the same
    /// attempt — keeping the stack's op counters aligned.
    ///
    /// # Panics
    ///
    /// Panics on a non-retryable fault ([`CommError::DeadRoot`]): no retry
    /// schedule can recover a broadcast whose only data source is gone.
    fn run<T>(&self, mut attempt_op: impl FnMut(&C) -> Result<T, CommError>) -> T {
        let mut attempt: u32 = 0;
        let mut op_start = self.inner.clock_ticks();
        loop {
            match attempt_op(&self.inner) {
                Ok(v) => return v,
                Err(e) if !e.is_retryable() => {
                    panic!("unrecoverable collective failure: {e}")
                }
                Err(e) => {
                    self.retries.set(self.retries.get() + 1);
                    ripples_metrics::add(ripples_metrics::Metric::CommRetries, 1);
                    ripples_trace::mark(TraceName::CommRetry, e.op_index(), u64::from(attempt));
                    self.inner.advance_clock(self.policy.backoff_ticks(attempt));
                    attempt += 1;
                    let waited = self.inner.clock_ticks().saturating_sub(op_start);
                    if attempt >= self.policy.max_attempts || waited > self.policy.op_timeout_ticks
                    {
                        let rank = e.rank();
                        self.inner.declare_dead(rank);
                        // Every rank declares the same deaths in lockstep,
                        // so the gauge is a cross-rank max of each stack's
                        // dead-set size, not a sum of declarations.
                        ripples_metrics::set_max(
                            ripples_metrics::Metric::DegradedRanks,
                            self.inner.dead_ranks().len() as u64,
                        );
                        ripples_trace::mark(TraceName::RankDead, u64::from(rank), e.op_index());
                        attempt = 0;
                        op_start = self.inner.clock_ticks();
                    }
                }
            }
        }
    }
}

impl<C: Communicator> Communicator for RetryComm<C> {
    fn rank(&self) -> u32 {
        self.inner.rank()
    }

    fn size(&self) -> u32 {
        self.inner.size()
    }

    fn barrier(&self) {
        self.run(Communicator::try_barrier);
    }

    fn all_reduce_sum_u64(&self, buf: &mut [u64]) {
        self.run(|c| c.try_all_reduce_sum_u64(buf));
    }

    fn all_reduce_sum_f64(&self, value: f64) -> f64 {
        self.run(|c| c.try_all_reduce_sum_f64(value))
    }

    fn all_reduce_max_f64(&self, value: f64) -> f64 {
        self.run(|c| c.try_all_reduce_max_f64(value))
    }

    fn broadcast_u64(&self, root: u32, value: u64) -> u64 {
        self.run(|c| c.try_broadcast_u64(root, value))
    }

    fn all_gather_u64(&self, value: u64) -> Vec<u64> {
        self.run(|c| c.try_all_gather_u64(value))
    }

    fn all_gather_u64_list(&self, items: &[u64]) -> Vec<Vec<u64>> {
        self.run(|c| c.try_all_gather_u64_list(items))
    }

    fn alltoallv_u64(&self, sends: &[Vec<u64>]) -> Vec<Vec<u64>> {
        self.run(|c| c.try_alltoallv_u64(sends))
    }

    fn post_exchange_u64(&self, sends: &[Vec<u64>]) -> ExchangeHandle {
        // Forward the post: a reliable backend stages it for true overlap;
        // a fault-injecting stack hands back `Deferred`, whose transport we
        // retry at the wait.
        self.inner.post_exchange_u64(sends)
    }

    fn wait_exchange(&self, handle: ExchangeHandle) -> Vec<Vec<u64>> {
        match handle {
            ExchangeHandle::Ready(result) => result,
            ExchangeHandle::Deferred(sends) => self.run(|c| c.try_alltoallv_u64(&sends)),
            ExchangeHandle::Staged(_) => self.inner.wait_exchange(handle),
        }
    }

    fn stats(&self) -> CommStats {
        self.inner.stats()
    }

    // The try_* surface passes through single-attempt: stacking a second
    // RetryComm keeps exactly-once retry semantics at the outermost layer.

    fn try_barrier(&self) -> Result<(), CommError> {
        self.inner.try_barrier()
    }

    fn try_all_reduce_sum_u64(&self, buf: &mut [u64]) -> Result<(), CommError> {
        self.inner.try_all_reduce_sum_u64(buf)
    }

    fn try_all_reduce_sum_f64(&self, value: f64) -> Result<f64, CommError> {
        self.inner.try_all_reduce_sum_f64(value)
    }

    fn try_all_reduce_max_f64(&self, value: f64) -> Result<f64, CommError> {
        self.inner.try_all_reduce_max_f64(value)
    }

    fn try_broadcast_u64(&self, root: u32, value: u64) -> Result<u64, CommError> {
        self.inner.try_broadcast_u64(root, value)
    }

    fn try_all_gather_u64(&self, value: u64) -> Result<Vec<u64>, CommError> {
        self.inner.try_all_gather_u64(value)
    }

    fn try_all_gather_u64_list(&self, items: &[u64]) -> Result<Vec<Vec<u64>>, CommError> {
        self.inner.try_all_gather_u64_list(items)
    }

    fn try_alltoallv_u64(&self, sends: &[Vec<u64>]) -> Result<Vec<Vec<u64>>, CommError> {
        self.inner.try_alltoallv_u64(sends)
    }

    fn dead_ranks(&self) -> Vec<u32> {
        self.inner.dead_ranks()
    }

    fn declare_dead(&self, rank: u32) {
        self.inner.declare_dead(rank);
    }

    fn clock_ticks(&self) -> u64 {
        self.inner.clock_ticks()
    }

    fn advance_clock(&self, ticks: u64) {
        self.inner.advance_clock(ticks);
    }

    fn health(&self) -> CommHealth {
        let mut health = self.inner.health();
        health.retries += self.retries.get();
        health
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultComm, FaultPlan};
    use crate::selfcomm::SelfComm;
    use crate::thread::ThreadWorld;

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ticks(0), 1);
        assert_eq!(p.backoff_ticks(1), 2);
        assert_eq!(p.backoff_ticks(5), 32);
        assert_eq!(p.backoff_ticks(40), 64);
    }

    #[test]
    fn reliable_backend_is_free() {
        let comm = RetryComm::with_defaults(SelfComm::new());
        let mut buf = vec![1u64, 2];
        comm.all_reduce_sum_u64(&mut buf);
        comm.barrier();
        assert_eq!(comm.retries(), 0);
        assert_eq!(comm.health(), CommHealth::default());
    }

    #[test]
    fn transient_drops_are_retried_to_success() {
        // Moderate drop rate: the op must eventually succeed because every
        // retry re-rolls a fresh op index. (Kept well below the level where
        // max_attempts consecutive failures — and thus a rank death — get
        // likely across 3 ranks × 20 ops.)
        let world = ThreadWorld::new(3);
        let results = world.run(|c| {
            let faulty = FaultComm::new(c, FaultPlan::new(7).with_drop_rate(0.15));
            let comm = RetryComm::with_defaults(&faulty);
            let mut buf = vec![u64::from(comm.rank())];
            for _ in 0..20 {
                comm.all_reduce_sum_u64(&mut buf);
            }
            (buf[0], comm.retries(), comm.health())
        });
        let expect = results[0].0;
        for (sum, retries, health) in results {
            assert_eq!(sum, expect);
            assert!(retries > 0, "0.15 drop rate over 20 ops must retry");
            assert_eq!(health.retries, retries);
            assert_eq!(health.dropped_ops, retries);
            assert!(health.dead_ranks.is_empty());
        }
    }

    #[test]
    fn persistent_stall_escalates_to_rank_death() {
        let world = ThreadWorld::new(2);
        let results = world.run(|c| {
            let faulty = FaultComm::new(c, FaultPlan::new(5).with_stall(1, 0));
            let comm = RetryComm::with_defaults(&faulty);
            let mut buf = vec![u64::from(comm.rank()) + 1];
            comm.all_reduce_sum_u64(&mut buf);
            (buf[0], comm.health())
        });
        for (sum, health) in results {
            // Rank 1 was declared dead mid-op; its contribution is zeroed.
            assert_eq!(sum, 1);
            assert_eq!(health.dead_ranks, vec![1]);
            assert_eq!(
                u64::from(RetryPolicy::default().max_attempts),
                health.retries
            );
        }
    }

    #[test]
    fn dead_root_broadcast_panics_through_retry() {
        // The dead-root check fires before any backend call on every rank,
        // so both ranks observe the panic without desynchronizing.
        let world = ThreadWorld::new(2);
        let msgs = world.run(|c| {
            let faulty = FaultComm::new(c, FaultPlan::none());
            faulty.declare_dead(1);
            let comm = RetryComm::with_defaults(&faulty);
            let caught =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| comm.broadcast_u64(1, 9)));
            let payload = caught.expect_err("dead-root broadcast must panic");
            payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default()
        });
        for m in msgs {
            assert!(m.contains("unrecoverable collective failure"), "got: {m}");
            assert!(m.contains("root rank 1 is dead"), "got: {m}");
        }
    }
}
