//! The single-rank communicator.

use crate::communicator::{traced, CommStats, Communicator, StatsCell};
use ripples_trace::TraceName;

/// A world of one rank: every collective is the identity.
///
/// Lets the distributed code path run (and be tested) without threads, and
/// serves as the degenerate base case of the scaling sweeps.
#[derive(Debug, Default)]
pub struct SelfComm {
    stats: StatsCell,
}

impl SelfComm {
    /// Creates the single-rank world.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Communicator for SelfComm {
    fn rank(&self) -> u32 {
        0
    }

    fn size(&self) -> u32 {
        1
    }

    fn barrier(&self) {
        self.stats
            .barrier_calls
            .set(self.stats.barrier_calls.get() + 1);
        traced(TraceName::CommBarrier, 0, || {});
    }

    fn all_reduce_sum_u64(&self, _buf: &mut [u64]) {
        self.stats
            .allreduce_calls
            .set(self.stats.allreduce_calls.get() + 1);
        // One rank: no bytes move.
        traced(TraceName::CommAllReduce, 0, || {});
    }

    fn all_reduce_sum_f64(&self, value: f64) -> f64 {
        self.stats
            .allreduce_calls
            .set(self.stats.allreduce_calls.get() + 1);
        traced(TraceName::CommAllReduce, 0, || value)
    }

    fn all_reduce_max_f64(&self, value: f64) -> f64 {
        self.stats
            .allreduce_calls
            .set(self.stats.allreduce_calls.get() + 1);
        traced(TraceName::CommAllReduce, 0, || value)
    }

    fn broadcast_u64(&self, root: u32, value: u64) -> u64 {
        assert_eq!(root, 0, "root {root} out of range for single-rank world");
        self.stats
            .broadcast_calls
            .set(self.stats.broadcast_calls.get() + 1);
        traced(TraceName::CommBroadcast, 0, || value)
    }

    fn all_gather_u64(&self, value: u64) -> Vec<u64> {
        self.stats
            .allgather_calls
            .set(self.stats.allgather_calls.get() + 1);
        traced(TraceName::CommAllGather, 0, || vec![value])
    }

    fn all_gather_u64_list(&self, items: &[u64]) -> Vec<Vec<u64>> {
        self.stats
            .allgather_calls
            .set(self.stats.allgather_calls.get() + 1);
        traced(TraceName::CommAllGather, 0, || vec![items.to_vec()])
    }

    fn alltoallv_u64(&self, sends: &[Vec<u64>]) -> Vec<Vec<u64>> {
        assert_eq!(sends.len(), 1, "one send list per rank");
        // One rank: its send to itself is the whole result, zero bytes move.
        self.stats.charge_exchange(0, 1);
        traced(TraceName::CommExchange, 0, || vec![sends[0].clone()])
    }

    fn stats(&self) -> CommStats {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_collectives() {
        let c = SelfComm::new();
        assert_eq!(c.rank(), 0);
        assert_eq!(c.size(), 1);
        let mut buf = vec![3u64, 5];
        c.all_reduce_sum_u64(&mut buf);
        assert_eq!(buf, vec![3, 5]);
        assert_eq!(c.all_reduce_sum_f64(2.5), 2.5);
        assert_eq!(c.all_reduce_max_f64(-1.0), -1.0);
        assert_eq!(c.broadcast_u64(0, 9), 9);
        assert_eq!(c.all_gather_u64(4), vec![4]);
        c.barrier();
        let s = c.stats();
        assert_eq!(s.allreduce_calls, 3);
        assert_eq!(s.barrier_calls, 1);
        assert_eq!(s.broadcast_calls, 1);
        assert_eq!(s.allgather_calls, 1);
        assert_eq!(s.bytes_moved, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_root_panics() {
        let c = SelfComm::new();
        let _ = c.broadcast_u64(2, 1);
    }
}
