//! MPI-like message-passing substrate for the distributed IMM
//! implementation.
//!
//! The CLUSTER'19 paper's distributed algorithm needs exactly three things
//! from MPI: rank/size introspection, `MPI_Allreduce` over vertex-counter
//! arrays, and barriers. Rust's MPI bindings are immature, so this crate
//! provides those primitives natively:
//!
//! * [`Communicator`] — the trait the algorithm is written against.
//! * [`SelfComm`] — the trivial single-rank world.
//! * [`ThreadWorld`] / [`ThreadComm`] — an in-process world where each rank
//!   is a thread and collectives run over shared memory. This executes the
//!   *same algorithm* with real synchronization, so correctness properties
//!   (e.g. "distributed seed set equals sequential seed set") are tested for
//!   real.
//! * [`costmodel`] — an α–β (Hockney/LogGP-style) communication-time model
//!   with presets for the paper's two clusters, used by the strong-scaling
//!   replay harness to *predict* wall-clock at rank counts this host cannot
//!   physically run (documented substitution; see DESIGN.md §1).
//! * [`fault`] / [`retry`] — a deterministic, seeded fault-injection
//!   decorator ([`FaultComm`] driven by a [`FaultPlan`]) and the
//!   lockstep retry/rank-death layer ([`RetryComm`]) the distributed
//!   engines wrap their communicator in, so a lossy fabric degrades runs
//!   instead of crashing them.
//!
//! Every communicator records how many collective calls and payload bytes it
//! has moved ([`CommStats`]), which both the experiments and the cost model
//! consume.

#![warn(missing_docs)]

pub mod communicator;
pub mod costmodel;
pub mod fault;
pub mod retry;
pub mod selfcomm;
pub mod thread;

pub use communicator::{
    CollectiveOp, CommError, CommHealth, CommStats, Communicator, ExchangeHandle,
};
pub use costmodel::{AlphaBetaModel, ClusterSpec};
pub use fault::{FaultComm, FaultKind, FaultPlan};
pub use retry::{RetryComm, RetryPolicy};
pub use selfcomm::SelfComm;
pub use thread::{ThreadComm, ThreadWorld};
