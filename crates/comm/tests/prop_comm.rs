//! Property-based tests for the shared-memory collectives: every collective
//! must equal its serial reduction for arbitrary payloads and world sizes.

use proptest::prelude::*;
use ripples_comm::{Communicator, ThreadWorld};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All-reduce equals the element-wise serial sum of all contributions.
    #[test]
    fn allreduce_matches_serial_sum(
        size in 1u32..6,
        base in prop::collection::vec(0u64..1 << 40, 1..64),
    ) {
        let world = ThreadWorld::new(size);
        let base_ref = &base;
        let results = world.run(|comm| {
            // Rank r contributes base rotated by r (deterministic, distinct).
            let mut buf: Vec<u64> = base_ref
                .iter()
                .cycle()
                .skip(comm.rank() as usize)
                .take(base_ref.len())
                .copied()
                .collect();
            comm.all_reduce_sum_u64(&mut buf);
            buf
        });
        // Serial reference.
        let mut expect = vec![0u64; base.len()];
        for r in 0..size as usize {
            for (i, e) in expect.iter_mut().enumerate() {
                *e += base[(i + r) % base.len()];
            }
        }
        for r in results {
            prop_assert_eq!(&r, &expect);
        }
    }

    /// All-gather-list returns every rank's list, in rank order, everywhere.
    #[test]
    fn allgatherv_matches_inputs(
        size in 1u32..6,
        lens in prop::collection::vec(0usize..20, 6),
    ) {
        let world = ThreadWorld::new(size);
        let lens_ref = &lens;
        let results = world.run(|comm| {
            let r = comm.rank() as usize;
            let mine: Vec<u64> = (0..lens_ref[r]).map(|i| (r as u64) * 1000 + i as u64).collect();
            comm.all_gather_u64_list(&mine)
        });
        for gathered in results {
            prop_assert_eq!(gathered.len(), size as usize);
            for (r, list) in gathered.iter().enumerate() {
                prop_assert_eq!(list.len(), lens[r]);
                for (i, &x) in list.iter().enumerate() {
                    prop_assert_eq!(x, (r as u64) * 1000 + i as u64);
                }
            }
        }
    }

    /// f64 max-reduce equals the serial max; broadcast delivers the root's
    /// value to everyone.
    #[test]
    fn scalar_collectives(size in 1u32..6, values in prop::collection::vec(-1e9f64..1e9, 6), root_pick in 0u32..6) {
        let world = ThreadWorld::new(size);
        let root = root_pick % size;
        let vals = &values;
        let results = world.run(|comm| {
            let mine = vals[comm.rank() as usize];
            let mx = comm.all_reduce_max_f64(mine);
            let sum = comm.all_reduce_sum_f64(mine);
            let bc = comm.broadcast_u64(root, mine.to_bits());
            (mx, sum, bc)
        });
        let expect_max = values[..size as usize]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let expect_sum: f64 = values[..size as usize].iter().sum();
        for (mx, sum, bc) in results {
            prop_assert_eq!(mx, expect_max);
            prop_assert!((sum - expect_sum).abs() < 1e-6 * expect_sum.abs().max(1.0));
            prop_assert_eq!(bc, values[root as usize].to_bits());
        }
    }
}
