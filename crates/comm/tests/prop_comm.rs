//! Property-based tests for the shared-memory collectives: every collective
//! must equal its serial reduction for arbitrary payloads and world sizes,
//! and an empty-plan [`FaultComm`] must be indistinguishable from the bare
//! backend — results *and* accounting — for arbitrary plan seeds.

use proptest::prelude::*;
use ripples_comm::{Communicator, FaultComm, FaultPlan, ThreadWorld};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All-reduce equals the element-wise serial sum of all contributions.
    #[test]
    fn allreduce_matches_serial_sum(
        size in 1u32..6,
        base in prop::collection::vec(0u64..1 << 40, 1..64),
    ) {
        let world = ThreadWorld::new(size);
        let base_ref = &base;
        let results = world.run(|comm| {
            // Rank r contributes base rotated by r (deterministic, distinct).
            let mut buf: Vec<u64> = base_ref
                .iter()
                .cycle()
                .skip(comm.rank() as usize)
                .take(base_ref.len())
                .copied()
                .collect();
            comm.all_reduce_sum_u64(&mut buf);
            buf
        });
        // Serial reference.
        let mut expect = vec![0u64; base.len()];
        for r in 0..size as usize {
            for (i, e) in expect.iter_mut().enumerate() {
                *e += base[(i + r) % base.len()];
            }
        }
        for r in results {
            prop_assert_eq!(&r, &expect);
        }
    }

    /// All-gather-list returns every rank's list, in rank order, everywhere.
    #[test]
    fn allgatherv_matches_inputs(
        size in 1u32..6,
        lens in prop::collection::vec(0usize..20, 6),
    ) {
        let world = ThreadWorld::new(size);
        let lens_ref = &lens;
        let results = world.run(|comm| {
            let r = comm.rank() as usize;
            let mine: Vec<u64> = (0..lens_ref[r]).map(|i| (r as u64) * 1000 + i as u64).collect();
            comm.all_gather_u64_list(&mine)
        });
        for gathered in results {
            prop_assert_eq!(gathered.len(), size as usize);
            for (r, list) in gathered.iter().enumerate() {
                prop_assert_eq!(list.len(), lens[r]);
                for (i, &x) in list.iter().enumerate() {
                    prop_assert_eq!(x, (r as u64) * 1000 + i as u64);
                }
            }
        }
    }

    /// f64 max-reduce equals the serial max; broadcast delivers the root's
    /// value to everyone.
    #[test]
    fn scalar_collectives(size in 1u32..6, values in prop::collection::vec(-1e9f64..1e9, 6), root_pick in 0u32..6) {
        let world = ThreadWorld::new(size);
        let root = root_pick % size;
        let vals = &values;
        let results = world.run(|comm| {
            let mine = vals[comm.rank() as usize];
            let mx = comm.all_reduce_max_f64(mine);
            let sum = comm.all_reduce_sum_f64(mine);
            let bc = comm.broadcast_u64(root, mine.to_bits());
            (mx, sum, bc)
        });
        let expect_max = values[..size as usize]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let expect_sum: f64 = values[..size as usize].iter().sum();
        for (mx, sum, bc) in results {
            prop_assert_eq!(mx, expect_max);
            prop_assert!((sum - expect_sum).abs() < 1e-6 * expect_sum.abs().max(1.0));
            prop_assert_eq!(bc, values[root as usize].to_bits());
        }
    }

    /// A [`FaultComm`] with an all-rates-zero plan is bitwise transparent at
    /// every world size, whatever seed the plan carries: identical collective
    /// results and identical backend `CommStats`.
    #[test]
    fn empty_fault_plan_is_transparent(
        size_pick in 0usize..3,
        plan_seed in any::<u64>(),
        payload in prop::collection::vec(0u64..1 << 40, 1..32),
    ) {
        let size = [1u32, 2, 4][size_pick];
        let payload_ref = &payload;

        let run = |wrap: bool| {
            let world = ThreadWorld::new(size);
            world.run(|comm| {
                let exercise = |c: &dyn Communicator| {
                    let mut buf: Vec<u64> = payload_ref
                        .iter()
                        .map(|&x| x ^ u64::from(c.rank()))
                        .collect();
                    c.all_reduce_sum_u64(&mut buf);
                    let mx = c.all_reduce_max_f64(f64::from(c.rank()));
                    let bc = c.broadcast_u64(0, 99);
                    let gathered = c.all_gather_u64(u64::from(c.rank()) + 7);
                    let lists = c.all_gather_u64_list(&buf[..buf.len().min(3)]);
                    c.barrier();
                    (buf, mx, bc, gathered, lists, c.stats())
                };
                if wrap {
                    let faulty = FaultComm::new(comm, FaultPlan::new(plan_seed));
                    let out = exercise(&faulty);
                    // Transparency extends to the health surface.
                    assert_eq!(faulty.health().dropped_ops, 0);
                    assert!(faulty.dead_ranks().is_empty());
                    out
                } else {
                    exercise(comm)
                }
            })
        };

        let bare = run(false);
        let wrapped = run(true);
        for (b, w) in bare.iter().zip(&wrapped) {
            prop_assert_eq!(&b.0, &w.0, "all_reduce_sum_u64 diverged");
            prop_assert_eq!(b.1, w.1, "all_reduce_max_f64 diverged");
            prop_assert_eq!(b.2, w.2, "broadcast_u64 diverged");
            prop_assert_eq!(&b.3, &w.3, "all_gather_u64 diverged");
            prop_assert_eq!(&b.4, &w.4, "all_gather_u64_list diverged");
            prop_assert_eq!(&b.5, &w.5, "backend CommStats diverged");
        }
    }
}
