//! Resident influence-query service: build the RRR sketch **once**, answer
//! many queries.
//!
//! A batch IMM run pays the full sampling cost (estimation rounds + θ top-up)
//! for a single `(k, seed-set)` answer and then drops the collection. The
//! [`SketchService`] instead builds the sketch one time — sized via
//! [`ImmParams::with_k_max`] so θ covers the largest query it will ever be
//! asked — and keeps the sealed store resident. Each query then re-runs only
//! greedy selection (milliseconds) instead of sampling (seconds to minutes).
//!
//! Three query forms are served:
//!
//! - [`SketchService::topk`] — the top-`k` seed set, bitwise identical to a
//!   fresh batch run at the same master seed and `k_max` (asserted by
//!   `tests/serve.rs` across engine × store combinations).
//! - [`SketchService::topk_excluding`] — top-`k` with a banned-vertex set,
//!   equal to batch selection on a sketch with the banned vertices filtered
//!   out of every sample.
//! - [`SketchService::spread_estimate`] — the standard RRR influence
//!   estimate `n · covered / θ` for an arbitrary seed set, no graph
//!   traversal.
//!
//! The sealed sketch can be written to disk and restored with
//! [`SketchService::snapshot_to`] / [`SketchService::restore_from`] (see
//! [`snapshot`]): a restart restores in O(bytes) and skips sampling
//! entirely, and restored sketches answer queries bitwise-identically.
//!
//! # Engine mapping
//!
//! All selection engines except CELF (`Lazy`) produce identical seed sets
//! for a given sketch, and the eager engines pick each seed with a
//! `k`-independent argmax, so `topk(k₁)` is a prefix of `topk(k₂)` for
//! `k₁ ≤ k₂`. CELF's lazy queue may *reorder tied seeds* depending on `k`,
//! which would break both the prefix property and serve-vs-batch bitwise
//! equality on tie-heavy sketches. The service therefore maps
//! `SelectEngine::Lazy` to `SelectEngine::Sequential` at query time (same
//! seeds whenever CELF breaks ties canonically, and a deterministic answer
//! when it would not). `tests/serve.rs` carries a regression test for the
//! prefix property.

pub mod snapshot;

use std::time::Instant;

use ripples_core::obs::Histogram;
use ripples_core::{
    build_resident_sketch, coverage_of_store, select_seeds_store_banned, select_with_engine_store,
    ImmParams, ImmResult, SampleEngine, SelectEngine,
};
use ripples_diffusion::{DynRrrStore, RrrStore, RrrStoreKind, StorageConfig};
use ripples_graph::{Graph, Vertex};
use ripples_metrics::Metric;
use ripples_trace::TraceName;

pub use snapshot::{SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};

/// Per-query accounting returned alongside every answer, the serve-mode
/// analogue of a batch run's `RunReport`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryReport {
    /// Wall time of the query, nanoseconds.
    pub wall_nanos: u64,
    /// RRR-index entries touched while answering (0 for `spread_estimate`,
    /// which scans samples rather than an index).
    pub entries_touched: u64,
    /// Samples covered by the returned/evaluated seed set.
    pub covered: usize,
    /// `covered / θ`.
    pub coverage_fraction: f64,
}

/// A built (or restored) resident sketch plus everything needed to answer
/// queries against it: the sealed store, the build parameters, and the
/// query-latency histogram behind the p50/p99 gauges.
pub struct SketchService {
    store: DynRrrStore,
    params: ImmParams,
    n: u32,
    graph_fingerprint: u64,
    select: SelectEngine,
    sample: SampleEngine,
    /// θ — the number of samples the sealed store holds.
    theta: usize,
    /// The build run's result, when the sketch was built in-process
    /// (`None` after a snapshot restore, which skips sampling).
    build_result: Option<ImmResult>,
    /// Wall seconds the build spent (sampling + estimation), for the
    /// snapshot-restore speedup report. 0.0 after a restore.
    build_wall_s: f64,
    latency: Histogram,
    queries_served: u64,
}

impl SketchService {
    /// Builds the sketch by running IMM's estimation + sampling phases once,
    /// sized for `params.sizing_k` (set [`ImmParams::with_k_max`] to the
    /// largest `k` the service must answer; queries beyond it are rejected).
    ///
    /// `select` chooses the engine used for every query's greedy pass
    /// (CELF is mapped to the sequential scan, see the module docs);
    /// `sample` and `storage` pick the sampling kernel and store layout
    /// exactly as in batch mode.
    #[must_use]
    pub fn build(
        graph: &Graph,
        params: ImmParams,
        select: SelectEngine,
        sample: SampleEngine,
        storage: StorageConfig,
    ) -> Self {
        let start = Instant::now();
        let built = build_resident_sketch(graph, &params, select, sample, storage);
        let build_wall_s = start.elapsed().as_secs_f64();
        let theta = built.store.len();
        let svc = Self {
            store: built.store,
            n: graph.num_vertices(),
            graph_fingerprint: graph.fingerprint(),
            params,
            select: Self::query_engine(select),
            sample,
            theta,
            build_result: Some(built.result),
            build_wall_s,
            latency: Histogram::new(),
            queries_served: 0,
        };
        svc.publish_resident_gauges();
        svc
    }

    /// Wraps an already-restored store (the [`snapshot`] module's restore
    /// path); callers use [`SketchService::restore_from`] instead.
    fn from_parts(
        store: DynRrrStore,
        params: ImmParams,
        n: u32,
        graph_fingerprint: u64,
        select: SelectEngine,
        sample: SampleEngine,
    ) -> Self {
        let theta = store.len();
        let svc = Self {
            store,
            params,
            n,
            graph_fingerprint,
            select: Self::query_engine(select),
            sample,
            theta,
            build_result: None,
            build_wall_s: 0.0,
            latency: Histogram::new(),
            queries_served: 0,
        };
        svc.publish_resident_gauges();
        svc
    }

    /// CELF may reorder tied seeds per `k`; serve answers must be
    /// `k`-stable, so Lazy degrades to the sequential reference scan.
    fn query_engine(select: SelectEngine) -> SelectEngine {
        match select {
            SelectEngine::Lazy => SelectEngine::Sequential,
            e => e,
        }
    }

    fn publish_resident_gauges(&self) {
        ripples_metrics::set_max(Metric::SketchBytes, self.store.resident_bytes() as u64);
    }

    /// Largest `k` a query may request: the sizing `k` the sketch was built
    /// for. `topk(k ≤ k_max())` is bitwise-identical to a fresh batch run.
    #[must_use]
    pub fn k_max(&self) -> u32 {
        self.params.sizing_k(self.n)
    }

    /// θ — the number of RRR samples the resident store holds.
    #[must_use]
    pub fn theta(&self) -> usize {
        self.theta
    }

    /// Number of graph vertices the sketch was built over.
    #[must_use]
    pub fn num_vertices(&self) -> u32 {
        self.n
    }

    /// Fingerprint of the graph the sketch was built over (see
    /// `Graph::fingerprint`); snapshots embed it so a restore against the
    /// wrong graph is a structured error, not a silent wrong answer.
    #[must_use]
    pub fn graph_fingerprint(&self) -> u64 {
        self.graph_fingerprint
    }

    /// Build parameters (master seed, ε, ℓ, model, `k`/`k_max`).
    #[must_use]
    pub fn params(&self) -> &ImmParams {
        &self.params
    }

    /// The sampling kernel the sketch was drawn with (snapshot provenance).
    #[must_use]
    pub fn sample_engine(&self) -> SampleEngine {
        self.sample
    }

    /// The engine answering queries (post CELF mapping).
    #[must_use]
    pub fn select_engine(&self) -> SelectEngine {
        self.select
    }

    /// Resident bytes of the sealed store.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.store.resident_bytes()
    }

    /// Wall seconds the in-process build took (0.0 after a restore).
    #[must_use]
    pub fn build_wall_s(&self) -> f64 {
        self.build_wall_s
    }

    /// The build run's full result, if the sketch was built in-process.
    #[must_use]
    pub fn build_result(&self) -> Option<&ImmResult> {
        self.build_result.as_ref()
    }

    /// Queries answered so far.
    #[must_use]
    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }

    /// Query-latency quantile in nanoseconds (power-of-two histogram
    /// resolution; the top bucket reports the observed max).
    #[must_use]
    pub fn latency_quantile_nanos(&self, q: f64) -> u64 {
        self.latency.quantile(q)
    }

    /// Borrows the resident store (read-only; snapshot + tests).
    #[must_use]
    pub fn store(&self) -> &DynRrrStore {
        self.store_ref()
    }

    fn store_ref(&self) -> &DynRrrStore {
        &self.store
    }

    fn check_k(&self, k: u32) -> Result<(), QueryError> {
        if k == 0 {
            return Err(QueryError::ZeroK);
        }
        if k > self.k_max() {
            return Err(QueryError::KTooLarge {
                k,
                k_max: self.k_max(),
            });
        }
        Ok(())
    }

    fn finish_query(&mut self, start: Instant, k: u32, entries: u64) -> u64 {
        let wall_nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.latency.record(wall_nanos);
        self.queries_served += 1;
        ripples_metrics::add(Metric::QueriesServed, 1);
        ripples_metrics::set(Metric::QueryP50Nanos, self.latency.quantile(0.50));
        ripples_metrics::set(Metric::QueryP99Nanos, self.latency.quantile(0.99));
        ripples_trace::mark(TraceName::QueryEnd, u64::from(k), entries);
        wall_nanos
    }

    /// Answers a top-`k` query: greedy max-cover over the resident sketch,
    /// bitwise identical to the selection a fresh batch run (same master
    /// seed, same `k_max`) would return for this `k`.
    ///
    /// # Errors
    ///
    /// [`QueryError::ZeroK`] / [`QueryError::KTooLarge`] when `k` is 0 or
    /// exceeds the sketch's sizing `k`.
    pub fn topk(&mut self, k: u32) -> Result<(Vec<Vertex>, QueryReport), QueryError> {
        self.check_k(k)?;
        ripples_trace::mark(TraceName::QueryBegin, u64::from(k), 0);
        let start = Instant::now();
        let (selection, stats) = select_with_engine_store(self.select, &self.store, self.n, k, 1);
        let wall_nanos = self.finish_query(start, k, stats.entries_touched);
        Ok((
            selection.seeds,
            QueryReport {
                wall_nanos,
                entries_touched: stats.entries_touched,
                covered: selection.covered,
                coverage_fraction: selection.fraction,
            },
        ))
    }

    /// Answers a top-`k` query with a banned-vertex set: equivalent to
    /// greedy selection over a sketch whose samples had the banned vertices
    /// filtered out (banned vertices are never candidates and never count
    /// as covering a sample).
    ///
    /// # Errors
    ///
    /// As [`SketchService::topk`], plus [`QueryError::BannedOutOfRange`]
    /// when a banned id is not a vertex of the graph.
    pub fn topk_excluding(
        &mut self,
        k: u32,
        banned_vertices: &[Vertex],
    ) -> Result<(Vec<Vertex>, QueryReport), QueryError> {
        self.check_k(k)?;
        let mut banned = vec![false; self.n as usize];
        for &v in banned_vertices {
            *banned
                .get_mut(v as usize)
                .ok_or(QueryError::BannedOutOfRange { vertex: v })? = true;
        }
        ripples_trace::mark(TraceName::QueryBegin, u64::from(k), 0);
        let start = Instant::now();
        let (selection, stats) = select_seeds_store_banned(&self.store, self.n, k, &banned);
        let wall_nanos = self.finish_query(start, k, stats.entries_touched);
        Ok((
            selection.seeds,
            QueryReport {
                wall_nanos,
                entries_touched: stats.entries_touched,
                covered: selection.covered,
                coverage_fraction: selection.fraction,
            },
        ))
    }

    /// Estimates the expected influence of an arbitrary seed set as
    /// `n · covered / θ` — the standard unbiased RRR estimator, answered
    /// from the resident sketch without touching the graph.
    ///
    /// # Errors
    ///
    /// [`QueryError::BannedOutOfRange`] (reused for any out-of-range seed
    /// id) when a seed is not a vertex of the graph.
    pub fn spread_estimate(&mut self, seeds: &[Vertex]) -> Result<(f64, QueryReport), QueryError> {
        if let Some(&v) = seeds.iter().find(|&&v| v >= self.n) {
            return Err(QueryError::BannedOutOfRange { vertex: v });
        }
        let k = u32::try_from(seeds.len()).unwrap_or(u32::MAX);
        ripples_trace::mark(TraceName::QueryBegin, u64::from(k), 0);
        let start = Instant::now();
        let covered = coverage_of_store(&self.store, seeds);
        let fraction = if self.theta == 0 {
            0.0
        } else {
            covered as f64 / self.theta as f64
        };
        let estimate = f64::from(self.n) * fraction;
        let wall_nanos = self.finish_query(start, k, 0);
        Ok((
            estimate,
            QueryReport {
                wall_nanos,
                entries_touched: 0,
                covered,
                coverage_fraction: fraction,
            },
        ))
    }

    /// Serializes the sealed sketch (with provenance header) to `path`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] on I/O failure or an unsupported store layout
    /// (flat and varint snapshot; bitpack and spill do not).
    pub fn snapshot_to(&self, path: &std::path::Path) -> Result<(), SnapshotError> {
        snapshot::write_snapshot(path, self)
    }

    /// Restores a service from a snapshot written by
    /// [`SketchService::snapshot_to`], skipping sampling entirely. The
    /// provided graph must fingerprint-match the one the sketch was built
    /// over; `select` picks the query engine exactly as in
    /// [`SketchService::build`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] on I/O failure, a corrupt/truncated file
    /// (structured, naming the offset and field), or a graph-fingerprint
    /// mismatch.
    pub fn restore_from(
        path: &std::path::Path,
        graph: &Graph,
        select: SelectEngine,
    ) -> Result<Self, SnapshotError> {
        let restored = snapshot::read_snapshot(path, graph)?;
        Ok(Self::from_parts(
            restored.store,
            restored.params,
            graph.num_vertices(),
            graph.fingerprint(),
            select,
            restored.sample,
        ))
    }

    /// The store layout of the resident sketch.
    #[must_use]
    pub fn store_kind(&self) -> RrrStoreKind {
        self.store.kind()
    }
}

/// A query the service cannot answer, reported to the client instead of
/// panicking the resident process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// `k = 0` requests nothing.
    ZeroK,
    /// `k` exceeds the sizing `k` the sketch was built for; answering would
    /// break the bitwise batch-equivalence guarantee.
    KTooLarge {
        /// The requested `k`.
        k: u32,
        /// The sketch's sizing `k`.
        k_max: u32,
    },
    /// A banned/seed vertex id is not a vertex of the graph.
    BannedOutOfRange {
        /// The offending id.
        vertex: Vertex,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::ZeroK => write!(f, "k must be positive"),
            QueryError::KTooLarge { k, k_max } => write!(
                f,
                "k = {k} exceeds the sketch's k_max = {k_max}; rebuild with a larger --k-max"
            ),
            QueryError::BannedOutOfRange { vertex } => {
                write!(f, "vertex id {vertex} is out of range for this graph")
            }
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;
    use ripples_diffusion::DiffusionModel;
    use ripples_graph::GraphBuilder;

    fn test_graph() -> Graph {
        // A 12-vertex two-community graph with a bridge: non-degenerate
        // coverage counts so selections are traceable and unique.
        let edges: Vec<(Vertex, Vertex, f32)> = vec![
            (0, 1, 0.9),
            (0, 2, 0.9),
            (1, 2, 0.8),
            (2, 3, 0.7),
            (3, 0, 0.6),
            (3, 4, 0.5),
            (4, 5, 0.9),
            (5, 6, 0.9),
            (6, 7, 0.8),
            (7, 8, 0.8),
            (8, 9, 0.7),
            (9, 10, 0.6),
            (10, 11, 0.9),
            (11, 6, 0.8),
            (2, 8, 0.4),
        ];
        let mut b = GraphBuilder::new(12);
        for (u, v, p) in edges {
            b.add_edge(u, v, p).unwrap();
        }
        b.build().unwrap()
    }

    fn service(k_max: u32) -> SketchService {
        let graph = test_graph();
        let params =
            ImmParams::new(1, 0.5, DiffusionModel::IndependentCascade, 7).with_k_max(k_max);
        SketchService::build(
            &graph,
            params,
            SelectEngine::Sequential,
            SampleEngine::Reference,
            StorageConfig::default(),
        )
    }

    #[test]
    fn topk_is_k_stable_prefix() {
        let mut svc = service(6);
        let (full, _) = svc.topk(6).unwrap();
        for k in 1..=6u32 {
            let (seeds, report) = svc.topk(k).unwrap();
            assert_eq!(seeds.len(), k as usize);
            assert_eq!(&seeds[..], &full[..k as usize], "prefix property at k={k}");
            assert!(report.coverage_fraction > 0.0);
        }
        assert_eq!(svc.queries_served(), 7);
    }

    #[test]
    fn k_bounds_are_enforced() {
        let mut svc = service(4);
        assert_eq!(svc.topk(0).unwrap_err(), QueryError::ZeroK);
        assert_eq!(
            svc.topk(5).unwrap_err(),
            QueryError::KTooLarge { k: 5, k_max: 4 }
        );
        // Errors do not count as served queries.
        assert_eq!(svc.queries_served(), 0);
    }

    #[test]
    fn excluding_drops_banned_seeds() {
        let mut svc = service(4);
        let (seeds, _) = svc.topk(2).unwrap();
        let (filtered, _) = svc.topk_excluding(2, &seeds).unwrap();
        for s in &seeds {
            assert!(!filtered.contains(s), "banned seed {s} reappeared");
        }
        assert_eq!(
            svc.topk_excluding(1, &[99]).unwrap_err(),
            QueryError::BannedOutOfRange { vertex: 99 }
        );
    }

    #[test]
    fn spread_estimate_matches_coverage_identity() {
        let mut svc = service(3);
        let (seeds, report) = svc.topk(3).unwrap();
        let (estimate, sreport) = svc.spread_estimate(&seeds).unwrap();
        // Same seed set, same sketch: identical coverage either way.
        assert_eq!(sreport.covered, report.covered);
        let n = f64::from(svc.num_vertices());
        assert!((estimate - n * sreport.coverage_fraction).abs() < 1e-12);
        assert_eq!(
            svc.spread_estimate(&[1000]).unwrap_err(),
            QueryError::BannedOutOfRange { vertex: 1000 }
        );
    }

    #[test]
    fn lazy_maps_to_sequential() {
        let graph = test_graph();
        let params = ImmParams::new(1, 0.5, DiffusionModel::IndependentCascade, 7).with_k_max(4);
        let svc = SketchService::build(
            &graph,
            params,
            SelectEngine::Lazy,
            SampleEngine::Reference,
            StorageConfig::default(),
        );
        assert_eq!(svc.select_engine(), SelectEngine::Sequential);
    }

    #[test]
    fn latency_quantiles_populate() {
        let mut svc = service(2);
        for _ in 0..5 {
            svc.topk(2).unwrap();
        }
        assert!(svc.latency_quantile_nanos(0.5) > 0);
        assert!(svc.latency_quantile_nanos(0.99) >= svc.latency_quantile_nanos(0.5));
    }
}
