//! Sketch snapshot/restore: serialize a sealed RRR store with a versioned
//! provenance header, restore it in O(bytes) and skip sampling entirely.
//!
//! # Format (version 1, all integers little-endian)
//!
//! ```text
//! offset  size  field
//!      0     8  magic "RIPLSNAP"
//!      8     4  version (u32) = 1
//!     12     8  checksum (u64, FNV-1a over every byte from offset 20 to EOF)
//!     20     1  store kind (0 = flat, 1 = varint)
//!     21     1  diffusion model (0 = ic, 1 = lt)
//!     22     1  sample engine (0 = auto, 1 = reference, 2 = fused)
//!     23     1  reserved, must be 0
//!     24     8  graph fingerprint (u64, Graph::fingerprint)
//!     32     8  master seed (u64)
//!     40     4  k (u32)
//!     44     4  k_max (u32, 0 = unset)
//!     48     8  epsilon (f64 bits)
//!     56     8  ell (f64 bits)
//!     64     8  theta (u64, sample count; must match the payload)
//!     72     …  payload (layout per store kind, below)
//! ```
//!
//! Flat payload: `u64` offsets length, offsets as `u64` each, `u64` data
//! length, vertex ids as `u32` each. Varint payload: `u64` offsets length,
//! offsets as `u64` each, `u64` counts length, counts as `u32` each, `u64`
//! byte-stream length, the raw delta-varint bytes.
//!
//! The provenance header pins everything that determined the sampled
//! collection: the graph (by fingerprint), the master seed, the sampling
//! kernel, the model, and the sizing parameters. A restore checks the
//! fingerprint against the live graph, re-validates the payload
//! structurally (monotone offsets, strictly-ascending samples, checked
//! varint decode), and finally verifies the whole-file checksum, so a
//! corrupt, truncated, or mismatched file is a structured
//! [`SnapshotError`] naming the offset and field — never a panic and never
//! a silently wrong sketch. The checksum runs *after* structural parsing
//! so truncation reports the exact field that ran dry; any single-byte
//! flip that survives the structural checks is caught by the checksum
//! (`crates/serve/tests/prop_snapshot.rs` asserts both properties over
//! random corruptions). Restored sketches answer queries
//! bitwise-identically to the service that wrote them.
//!
//! Only the flat and varint layouts snapshot; the bitpack and spill
//! backends keep state (per-vertex widths, on-disk chunks) that the v1
//! format does not carry, and report [`SnapshotError::UnsupportedStore`].

use std::fs;
use std::path::Path;

use ripples_core::{ImmParams, SampleEngine};
use ripples_diffusion::{
    CompressedRrrCollection, DiffusionModel, DynRrrStore, RrrCollection, RrrStore, RrrStoreKind,
};
use ripples_graph::Graph;

use crate::SketchService;

/// The 8-byte file magic.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"RIPLSNAP";
/// The format version this build writes and reads.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a snapshot could not be written or restored. Every decode-side
/// variant names the file offset and the field being read, so a corrupt
/// file is diagnosable without a hex dump.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// Filesystem failure (open/read/write), with the OS detail.
    Io {
        /// What the snapshot code was doing.
        action: &'static str,
        /// `std::io::Error` rendering.
        detail: String,
    },
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic {
        /// The 8 bytes actually found.
        found: [u8; 8],
    },
    /// The file's version is not [`SNAPSHOT_VERSION`].
    UnsupportedVersion {
        /// The version actually found.
        found: u32,
    },
    /// The store layout cannot snapshot (bitpack/spill on write, or an
    /// unknown kind byte on read).
    UnsupportedStore {
        /// The layout's CLI tag, or `"kind byte N"` for an unknown byte.
        kind: String,
    },
    /// The file ends before `field` is complete.
    Truncated {
        /// The field being read when the bytes ran out.
        field: &'static str,
        /// File offset where the read began.
        offset: usize,
    },
    /// A field decodes but its value is inconsistent.
    Corrupt {
        /// The offending field.
        field: &'static str,
        /// File offset where the field begins.
        offset: usize,
        /// What is wrong with the value.
        detail: String,
    },
    /// The snapshot was built over a different graph.
    FingerprintMismatch {
        /// Fingerprint recorded in the snapshot.
        expected: u64,
        /// Fingerprint of the graph supplied at restore.
        found: u64,
    },
    /// The file parses but its bytes do not hash to the recorded checksum
    /// (bit rot or tampering that slipped past the structural checks).
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes actually read.
        found: u64,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io { action, detail } => {
                write!(f, "snapshot I/O failed while {action}: {detail}")
            }
            SnapshotError::BadMagic { found } => {
                write!(
                    f,
                    "not a sketch snapshot: magic bytes {found:02x?} at offset 0"
                )
            }
            SnapshotError::UnsupportedVersion { found } => write!(
                f,
                "snapshot version {found} is not supported (this build reads v{SNAPSHOT_VERSION})"
            ),
            SnapshotError::UnsupportedStore { kind } => {
                write!(f, "store layout {kind} does not support snapshots")
            }
            SnapshotError::Truncated { field, offset } => {
                write!(
                    f,
                    "snapshot truncated at offset {offset} while reading {field}"
                )
            }
            SnapshotError::Corrupt {
                field,
                offset,
                detail,
            } => write!(
                f,
                "snapshot corrupt: field {field} at offset {offset}: {detail}"
            ),
            SnapshotError::FingerprintMismatch { expected, found } => write!(
                f,
                "graph fingerprint mismatch: snapshot was built over {expected:#018x}, \
                 the supplied graph is {found:#018x}"
            ),
            SnapshotError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot checksum mismatch: header records {expected:#018x}, \
                 file bytes hash to {found:#018x}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Everything [`read_snapshot`] recovers: the sealed store plus the build
/// provenance needed to reconstruct an equivalent [`SketchService`].
#[derive(Debug)]
pub struct RestoredSketch {
    /// The restored, sealed store.
    pub store: DynRrrStore,
    /// The build parameters (master seed, ε, ℓ, model, k, k_max).
    pub params: ImmParams,
    /// The sampling kernel the sketch was drawn with.
    pub sample: SampleEngine,
}

const fn model_byte(model: DiffusionModel) -> u8 {
    match model {
        DiffusionModel::IndependentCascade => 0,
        DiffusionModel::LinearThreshold => 1,
    }
}

const fn sample_byte(sample: SampleEngine) -> u8 {
    match sample {
        SampleEngine::Auto => 0,
        SampleEngine::Reference => 1,
        SampleEngine::Fused => 2,
    }
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Byte offset of the checksum field; the checksum covers everything
/// *after* it (offset [`CHECKSUM_COVERS_FROM`] to EOF).
const CHECKSUM_OFFSET: usize = 12;
/// First byte covered by the checksum.
const CHECKSUM_COVERS_FROM: usize = CHECKSUM_OFFSET + 8;

/// FNV-1a over a byte slice — the same hash family `Graph::fingerprint`
/// uses, good enough to catch bit rot (this is an integrity check, not an
/// authenticity one).
fn fnv1a(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Serializes `service`'s sealed sketch to `path`.
///
/// # Errors
///
/// [`SnapshotError::UnsupportedStore`] for bitpack/spill layouts,
/// [`SnapshotError::Io`] on filesystem failure.
pub fn write_snapshot(path: &Path, service: &SketchService) -> Result<(), SnapshotError> {
    let bytes = encode_snapshot(service)?;
    fs::write(path, bytes).map_err(|e| SnapshotError::Io {
        action: "writing the snapshot file",
        detail: e.to_string(),
    })
}

/// Serializes `service`'s sealed sketch into a byte buffer (the body of
/// [`write_snapshot`], separated for tests).
///
/// # Errors
///
/// [`SnapshotError::UnsupportedStore`] for bitpack/spill layouts.
pub fn encode_snapshot(service: &SketchService) -> Result<Vec<u8>, SnapshotError> {
    let store = service.store();
    let kind_byte: u8 = match store.kind() {
        RrrStoreKind::Flat => 0,
        RrrStoreKind::Varint => 1,
        other => {
            return Err(SnapshotError::UnsupportedStore {
                kind: other.tag().to_string(),
            })
        }
    };
    let params = service.params();
    let mut out = Vec::with_capacity(80 + store.resident_bytes());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    push_u32(&mut out, SNAPSHOT_VERSION);
    push_u64(&mut out, 0); // checksum placeholder, patched below
    out.push(kind_byte);
    out.push(model_byte(params.model));
    out.push(sample_byte(service.sample_engine()));
    out.push(0); // reserved
    push_u64(&mut out, service.graph_fingerprint());
    push_u64(&mut out, params.seed);
    push_u32(&mut out, params.k);
    push_u32(&mut out, params.k_max.unwrap_or(0));
    push_u64(&mut out, params.epsilon.to_bits());
    push_u64(&mut out, params.ell.to_bits());
    push_u64(&mut out, service.theta() as u64);
    match store.kind() {
        RrrStoreKind::Flat => {
            let flat = store.as_flat().expect("flat kind has flat layout");
            push_u64(&mut out, flat.raw_offsets().len() as u64);
            for &o in flat.raw_offsets() {
                push_u64(&mut out, o as u64);
            }
            push_u64(&mut out, flat.raw_data().len() as u64);
            for &v in flat.raw_data() {
                push_u32(&mut out, v);
            }
        }
        RrrStoreKind::Varint => {
            let varint = store.as_varint().expect("varint kind has varint layout");
            push_u64(&mut out, varint.raw_offsets().len() as u64);
            for &o in varint.raw_offsets() {
                push_u64(&mut out, o as u64);
            }
            push_u64(&mut out, varint.raw_counts().len() as u64);
            for &c in varint.raw_counts() {
                push_u32(&mut out, c);
            }
            push_u64(&mut out, varint.raw_bytes().len() as u64);
            out.extend_from_slice(varint.raw_bytes());
        }
        _ => unreachable!("rejected above"),
    }
    let checksum = fnv1a(&out[CHECKSUM_COVERS_FROM..]);
    out[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].copy_from_slice(&checksum.to_le_bytes());
    Ok(out)
}

/// A bounds-checked little-endian reader that tracks the file offset, so
/// every failure can name where and what it was reading.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SnapshotError::Truncated {
                field,
                offset: self.pos,
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, field)?[0])
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, SnapshotError> {
        let b = self.take(4, field)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, SnapshotError> {
        let b = self.take(8, field)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// A length field that must also fit in memory as `elem_size`-byte
    /// elements of the remaining file, preventing absurd-length
    /// allocations from corrupt headers.
    fn len(&mut self, field: &'static str, elem_size: usize) -> Result<usize, SnapshotError> {
        let offset = self.pos;
        let raw = self.u64(field)?;
        let len = usize::try_from(raw).map_err(|_| SnapshotError::Corrupt {
            field,
            offset,
            detail: format!("length {raw} does not fit in memory"),
        })?;
        let remaining = self.buf.len() - self.pos;
        if len.checked_mul(elem_size).is_none_or(|b| b > remaining) {
            return Err(SnapshotError::Corrupt {
                field,
                offset,
                detail: format!(
                    "length {len} x {elem_size} bytes exceeds the {remaining} bytes left in the file"
                ),
            });
        }
        Ok(len)
    }
}

/// Reads and validates a snapshot from `path`, checking its graph
/// fingerprint against `graph`.
///
/// # Errors
///
/// See [`SnapshotError`]; structural payload problems surface as
/// [`SnapshotError::Corrupt`] with the underlying validation message.
pub fn read_snapshot(path: &Path, graph: &Graph) -> Result<RestoredSketch, SnapshotError> {
    let bytes = fs::read(path).map_err(|e| SnapshotError::Io {
        action: "reading the snapshot file",
        detail: e.to_string(),
    })?;
    decode_snapshot(&bytes, graph)
}

/// Decodes a snapshot from an in-memory buffer (the body of
/// [`read_snapshot`], separated for tests and fuzzing).
///
/// # Errors
///
/// See [`read_snapshot`].
pub fn decode_snapshot(bytes: &[u8], graph: &Graph) -> Result<RestoredSketch, SnapshotError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let magic = r.take(8, "magic")?;
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic {
            found: magic.try_into().expect("8-byte slice"),
        });
    }
    let version = r.u32("version")?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    let checksum = r.u64("checksum")?;
    let kind_offset = r.pos;
    let kind_byte = r.u8("store kind")?;
    let model_offset = r.pos;
    let model_byte = r.u8("diffusion model")?;
    let sample_offset = r.pos;
    let sample_byte = r.u8("sample engine")?;
    let reserved_offset = r.pos;
    let reserved = r.u8("reserved")?;
    if reserved != 0 {
        return Err(SnapshotError::Corrupt {
            field: "reserved",
            offset: reserved_offset,
            detail: format!("expected 0, found {reserved}"),
        });
    }
    let fingerprint = r.u64("graph fingerprint")?;
    let live = graph.fingerprint();
    if fingerprint != live {
        return Err(SnapshotError::FingerprintMismatch {
            expected: fingerprint,
            found: live,
        });
    }
    let seed = r.u64("master seed")?;
    let k_offset = r.pos;
    let k = r.u32("k")?;
    let k_max = r.u32("k_max")?;
    let eps_offset = r.pos;
    let epsilon = f64::from_bits(r.u64("epsilon")?);
    let ell_offset = r.pos;
    let ell = f64::from_bits(r.u64("ell")?);
    let theta_offset = r.pos;
    let theta = r.u64("theta")?;

    let model = match model_byte {
        0 => DiffusionModel::IndependentCascade,
        1 => DiffusionModel::LinearThreshold,
        other => {
            return Err(SnapshotError::Corrupt {
                field: "diffusion model",
                offset: model_offset,
                detail: format!("unknown model byte {other}"),
            })
        }
    };
    let sample = match sample_byte {
        0 => SampleEngine::Auto,
        1 => SampleEngine::Reference,
        2 => SampleEngine::Fused,
        other => {
            return Err(SnapshotError::Corrupt {
                field: "sample engine",
                offset: sample_offset,
                detail: format!("unknown sample-engine byte {other}"),
            })
        }
    };
    if k == 0 {
        return Err(SnapshotError::Corrupt {
            field: "k",
            offset: k_offset,
            detail: "k must be positive".to_string(),
        });
    }
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(SnapshotError::Corrupt {
            field: "epsilon",
            offset: eps_offset,
            detail: format!("epsilon {epsilon} outside (0, 1)"),
        });
    }
    // NaN-safe: reject NaN as well as zero/negative.
    if ell.is_nan() || ell <= 0.0 {
        return Err(SnapshotError::Corrupt {
            field: "ell",
            offset: ell_offset,
            detail: format!("ell {ell} must be positive"),
        });
    }

    let store = match kind_byte {
        0 => decode_flat_payload(&mut r)?,
        1 => decode_varint_payload(&mut r)?,
        other => {
            return Err(SnapshotError::UnsupportedStore {
                kind: format!("kind byte {other}"),
            })
        }
    };
    if r.pos != bytes.len() {
        return Err(SnapshotError::Corrupt {
            field: "payload",
            offset: r.pos,
            detail: format!("{} trailing bytes after the payload", bytes.len() - r.pos),
        });
    }
    if store.len() as u64 != theta {
        return Err(SnapshotError::Corrupt {
            field: "theta",
            offset: theta_offset,
            detail: format!(
                "header says {theta} samples but the payload holds {}",
                store.len()
            ),
        });
    }
    if let Some(v) = max_vertex(&store) {
        if v >= graph.num_vertices() {
            return Err(SnapshotError::Corrupt {
                field: "payload",
                offset: kind_offset,
                detail: format!(
                    "sample vertex id {v} is out of range for a {}-vertex graph",
                    graph.num_vertices()
                ),
            });
        }
    }

    // Last line of defense: a byte flip the structural checks cannot see
    // (e.g. a vertex id changed to another valid id) fails here.
    let computed = fnv1a(&bytes[CHECKSUM_COVERS_FROM..]);
    if computed != checksum {
        return Err(SnapshotError::ChecksumMismatch {
            expected: checksum,
            found: computed,
        });
    }

    let mut params = ImmParams::new(k, epsilon, model, seed);
    if k_max > 0 {
        params = params.with_k_max(k_max);
    }
    Ok(RestoredSketch {
        store,
        params,
        sample,
    })
}

fn decode_flat_payload(r: &mut Reader<'_>) -> Result<DynRrrStore, SnapshotError> {
    let payload_offset = r.pos;
    let offsets_len = r.len("flat offsets length", 8)?;
    let mut offsets = Vec::with_capacity(offsets_len);
    for _ in 0..offsets_len {
        let off_pos = r.pos;
        let raw = r.u64("flat offset")?;
        offsets.push(usize::try_from(raw).map_err(|_| SnapshotError::Corrupt {
            field: "flat offset",
            offset: off_pos,
            detail: format!("offset {raw} does not fit in memory"),
        })?);
    }
    let data_len = r.len("flat data length", 4)?;
    let mut data = Vec::with_capacity(data_len);
    for _ in 0..data_len {
        data.push(r.u32("flat vertex id")?);
    }
    let collection =
        RrrCollection::from_raw_parts(offsets, data).map_err(|detail| SnapshotError::Corrupt {
            field: "flat payload",
            offset: payload_offset,
            detail,
        })?;
    Ok(DynRrrStore::from_flat(collection))
}

fn decode_varint_payload(r: &mut Reader<'_>) -> Result<DynRrrStore, SnapshotError> {
    let payload_offset = r.pos;
    let offsets_len = r.len("varint offsets length", 8)?;
    let mut offsets = Vec::with_capacity(offsets_len);
    for _ in 0..offsets_len {
        let off_pos = r.pos;
        let raw = r.u64("varint offset")?;
        offsets.push(usize::try_from(raw).map_err(|_| SnapshotError::Corrupt {
            field: "varint offset",
            offset: off_pos,
            detail: format!("offset {raw} does not fit in memory"),
        })?);
    }
    let counts_len = r.len("varint counts length", 4)?;
    let mut counts = Vec::with_capacity(counts_len);
    for _ in 0..counts_len {
        counts.push(r.u32("varint count")?);
    }
    let bytes_len = r.len("varint byte-stream length", 1)?;
    let data = r.take(bytes_len, "varint byte stream")?.to_vec();
    let collection =
        CompressedRrrCollection::from_raw_parts(offsets, counts, data).map_err(|detail| {
            SnapshotError::Corrupt {
                field: "varint payload",
                offset: payload_offset,
                detail,
            }
        })?;
    Ok(DynRrrStore::from_varint(collection))
}

/// Largest vertex id appearing in any sample, for range validation
/// against the live graph at restore time.
fn max_vertex(store: &DynRrrStore) -> Option<u32> {
    let mut max: Option<u32> = None;
    let mut buf = Vec::new();
    for i in 0..store.len() {
        store.decode_into(i, &mut buf);
        // Samples are strictly ascending, so the last entry is the max.
        if let Some(&m) = buf.last() {
            max = Some(max.map_or(m, |cur| cur.max(m)));
        }
    }
    max
}
