//! Property-based tests for the sketch snapshot format: snapshot → restore
//! is the identity on the resident sketch (samples, provenance, and every
//! selection it can answer), and no corruption of the byte stream —
//! truncation, single-byte flips, wrong graph — ever panics or silently
//! restores a different sketch; each yields a structured [`SnapshotError`].

use proptest::prelude::*;
use ripples_core::{ImmParams, SampleEngine, SelectEngine};
use ripples_diffusion::{DiffusionModel, RrrStore, RrrStoreKind, StorageConfig};
use ripples_graph::{Graph, GraphBuilder, Vertex};
use ripples_serve::snapshot::{decode_snapshot, encode_snapshot};
use ripples_serve::{SketchService, SnapshotError};

/// A small two-community graph with a bridge: dense enough that sketches
/// are non-degenerate, small enough that a full IMM build per proptest
/// case is cheap.
fn test_graph() -> Graph {
    let edges: Vec<(Vertex, Vertex, f32)> = vec![
        (0, 1, 0.9),
        (0, 2, 0.9),
        (1, 2, 0.8),
        (2, 3, 0.7),
        (3, 0, 0.6),
        (3, 4, 0.5),
        (4, 5, 0.9),
        (5, 6, 0.9),
        (6, 7, 0.8),
        (7, 8, 0.8),
        (8, 9, 0.7),
        (9, 10, 0.6),
        (10, 11, 0.9),
        (11, 6, 0.8),
        (2, 8, 0.4),
    ];
    let mut b = GraphBuilder::new(12);
    for (u, v, p) in edges {
        b.add_edge(u, v, p).unwrap();
    }
    b.build().unwrap()
}

/// A graph that differs from [`test_graph`] by a single edge probability —
/// enough to change the fingerprint.
fn other_graph() -> Graph {
    let mut b = GraphBuilder::new(12);
    b.add_edge(0, 1, 0.5).unwrap();
    b.add_edge(1, 2, 0.5).unwrap();
    b.build().unwrap()
}

fn build_service(seed: u64, k_max: u32, kind: RrrStoreKind) -> SketchService {
    let graph = test_graph();
    let params = ImmParams::new(1, 0.5, DiffusionModel::IndependentCascade, seed).with_k_max(k_max);
    SketchService::build(
        &graph,
        params,
        SelectEngine::Sequential,
        SampleEngine::Reference,
        StorageConfig::of(kind),
    )
}

fn store_kinds() -> impl Strategy<Value = RrrStoreKind> {
    (0u8..2).prop_map(|b| {
        if b == 0 {
            RrrStoreKind::Flat
        } else {
            RrrStoreKind::Varint
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// encode → decode restores the exact sketch: same θ, identical samples
    /// bit for bit, identical provenance, and identical selections at every
    /// k the sketch can answer.
    #[test]
    fn round_trip_is_identity(seed in 0u64..1_000, k_max in 1u32..5, kind in store_kinds()) {
        let graph = test_graph();
        let svc = build_service(seed, k_max, kind);
        let bytes = encode_snapshot(&svc).unwrap();
        let restored = decode_snapshot(&bytes, &graph).unwrap();

        // Sample-level identity.
        prop_assert_eq!(restored.store.len(), svc.theta());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for i in 0..restored.store.len() {
            svc.store().decode_into(i, &mut a);
            restored.store.decode_into(i, &mut b);
            prop_assert_eq!(&a, &b, "sample {} differs after restore", i);
        }

        // Provenance identity.
        prop_assert_eq!(restored.params, svc.params().clone());
        prop_assert_eq!(restored.sample, svc.sample_engine());

        // Selection identity: the restored service answers every k the
        // original can, bitwise.
        let mut orig = build_service(seed, k_max, kind);
        let mut rest = SketchService::build(
            &graph,
            restored.params,
            SelectEngine::Sequential,
            SampleEngine::Reference,
            StorageConfig::of(kind),
        );
        for k in 1..=k_max {
            let (s1, _) = orig.topk(k).unwrap();
            let (s2, _) = rest.topk(k).unwrap();
            prop_assert_eq!(s1, s2, "topk({}) differs after restore", k);
        }
    }

    /// Every strict prefix of a valid snapshot fails with a structured
    /// error — no panic, no partial sketch.
    #[test]
    fn truncation_is_a_structured_error(seed in 0u64..200, cut in 0.0f64..1.0) {
        let graph = test_graph();
        let svc = build_service(seed, 3, RrrStoreKind::Flat);
        let bytes = encode_snapshot(&svc).unwrap();
        let len = ((bytes.len() as f64) * cut) as usize;
        prop_assume!(len < bytes.len());
        let err = decode_snapshot(&bytes[..len], &graph).unwrap_err();
        // Truncation inside the payload shows up as the field that ran
        // dry or a length that no longer fits; never as a valid sketch.
        prop_assert!(matches!(
            err,
            SnapshotError::Truncated { .. }
                | SnapshotError::Corrupt { .. }
                | SnapshotError::BadMagic { .. }
        ), "unexpected error shape: {:?}", err);
    }

    /// Flipping any single byte anywhere in the file is always detected:
    /// header flips hit the magic/version/field checks, payload flips that
    /// survive the structural validation hit the whole-file checksum.
    #[test]
    fn single_byte_corruption_is_always_detected(
        seed in 0u64..200,
        pos_frac in 0.0f64..1.0,
        flip in 1u8..255,
        kind in store_kinds(),
    ) {
        let graph = test_graph();
        let svc = build_service(seed, 3, kind);
        let mut bytes = encode_snapshot(&svc).unwrap();
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        bytes[pos] ^= flip;
        let result = decode_snapshot(&bytes, &graph);
        prop_assert!(result.is_err(), "byte {} xor {:#04x} went undetected", pos, flip);
    }

    /// A snapshot restored against a different graph is a fingerprint
    /// mismatch naming both fingerprints, not a silently wrong sketch.
    #[test]
    fn wrong_graph_is_a_fingerprint_mismatch(seed in 0u64..200) {
        let svc = build_service(seed, 2, RrrStoreKind::Flat);
        let bytes = encode_snapshot(&svc).unwrap();
        let wrong = other_graph();
        match decode_snapshot(&bytes, &wrong).unwrap_err() {
            SnapshotError::FingerprintMismatch { expected, found } => {
                prop_assert_eq!(expected, svc.graph_fingerprint());
                prop_assert_eq!(found, wrong.fingerprint());
            }
            other => prop_assert!(false, "expected FingerprintMismatch, got {:?}", other),
        }
    }
}

/// Deterministic spot checks that pin the error *shapes* the proptests
/// accept: magic, version, reserved byte, store kind, and theta handling.
#[test]
fn error_shapes_name_offset_and_field() {
    let graph = test_graph();
    let svc = build_service(7, 2, RrrStoreKind::Flat);
    let good = encode_snapshot(&svc).unwrap();

    // Bad magic.
    let mut bad = good.clone();
    bad[0] = b'X';
    assert!(matches!(
        decode_snapshot(&bad, &graph).unwrap_err(),
        SnapshotError::BadMagic { .. }
    ));

    // Unsupported version.
    let mut bad = good.clone();
    bad[8] = 99;
    assert_eq!(
        decode_snapshot(&bad, &graph).unwrap_err(),
        SnapshotError::UnsupportedVersion { found: 99 }
    );

    // Unknown store kind byte (offset 20).
    let mut bad = good.clone();
    bad[20] = 7;
    let err = decode_snapshot(&bad, &graph).unwrap_err();
    assert!(
        matches!(&err, SnapshotError::UnsupportedStore { kind } if kind.contains('7'))
            || matches!(err, SnapshotError::ChecksumMismatch { .. }),
        "unexpected: {err:?}"
    );

    // Empty file truncates at the magic.
    assert_eq!(
        decode_snapshot(&[], &graph).unwrap_err(),
        SnapshotError::Truncated {
            field: "magic",
            offset: 0
        }
    );

    // The error messages are human-readable and name the field.
    let msg = SnapshotError::Truncated {
        field: "theta",
        offset: 64,
    }
    .to_string();
    assert!(msg.contains("theta") && msg.contains("64"), "{msg}");
}

/// Bitpack and spill stores refuse to snapshot with a structured error
/// instead of writing a file they could not restore.
#[test]
fn unsupported_store_kinds_refuse_to_encode() {
    for kind in [RrrStoreKind::Bitpack, RrrStoreKind::Spill] {
        let svc = build_service(7, 2, kind);
        match encode_snapshot(&svc).unwrap_err() {
            SnapshotError::UnsupportedStore { kind: tag } => {
                assert_eq!(tag, kind.tag());
            }
            other => panic!("expected UnsupportedStore, got {other:?}"),
        }
    }
}
