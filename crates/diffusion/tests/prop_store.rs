//! Property-based tests for the RRR storage backends: any sorted set of
//! vertex ids must survive the flat → compressed → decode round trip
//! bit-for-bit, through every backend and through the arena merge path.

use proptest::prelude::*;
use ripples_diffusion::SampleArena;
use ripples_diffusion::{
    BitpackedRrrCollection, CompressedRrrCollection, RrrCollection, RrrStore, SpillRrrStore,
};

/// Arbitrary *sorted, deduplicated* RRR sets — the invariant every sampler
/// upholds. Includes the empty set, singletons, and ids up to `u32::MAX`.
fn sorted_sets() -> impl Strategy<Value = Vec<Vec<u32>>> {
    // Mostly small ids, with the extremes (0, near-u32::MAX) mixed in so
    // varint continuation bytes and the 32-bit bitpack width get exercised.
    let id = (0u32..520).prop_map(|v| if v >= 512 { u32::MAX - (v - 512) } else { v });
    let set =
        prop::collection::btree_set(id, 0..24).prop_map(|s| s.into_iter().collect::<Vec<u32>>());
    prop::collection::vec(set, 0..40)
}

fn flat_of(sets: &[Vec<u32>]) -> RrrCollection {
    let mut flat = RrrCollection::new();
    for s in sets {
        flat.push(s);
    }
    flat
}

/// Decodes every sample of `store` and checks it against the reference,
/// via all three read paths (`decode_into`, `for_each_vertex`, `contains`).
fn assert_round_trip<S: RrrStore>(store: &S, sets: &[Vec<u32>]) {
    assert_eq!(store.len(), sets.len());
    let total: u64 = sets.iter().map(|s| s.len() as u64).sum();
    assert_eq!(store.total_entries(), total);
    let mut out = Vec::new();
    for (i, expect) in sets.iter().enumerate() {
        assert_eq!(store.sample_len(i), expect.len(), "sample {i} length");
        store.decode_into(i, &mut out);
        assert_eq!(&out, expect, "sample {i} decode_into");
        let mut streamed = Vec::new();
        store.for_each_vertex(i, |v| streamed.push(v));
        assert_eq!(&streamed, expect, "sample {i} for_each_vertex");
        for &v in expect {
            assert!(store.contains(i, v), "sample {i} missing {v}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// flat → varint → decode is the identity for arbitrary sorted sets.
    #[test]
    fn varint_round_trip_is_identity(sets in sorted_sets()) {
        let flat = flat_of(&sets);
        let varint = CompressedRrrCollection::from(&flat);
        assert_round_trip(&varint, &sets);
        prop_assert!(
            CompressedRrrCollection::from(&flat) == varint,
            "re-encoding must be deterministic"
        );
    }

    /// Every backend round-trips identically, whether filled by `push` or
    /// through the `SampleArena` merge path the parallel samplers use.
    #[test]
    fn all_backends_round_trip(sets in sorted_sets()) {
        let flat = flat_of(&sets);
        assert_round_trip(&flat, &sets);

        let mut varint = CompressedRrrCollection::new();
        let mut bitpack = BitpackedRrrCollection::new(u32::MAX);
        let mut spill = SpillRrrStore::new(2048);
        let mut arena = SampleArena::with_capacity(sets.len());
        for s in &sets {
            RrrStore::push(&mut varint, s);
            RrrStore::push(&mut bitpack, s);
            RrrStore::push(&mut spill, s);
            arena.append_with(|data| {
                data.extend_from_slice(s);
                0
            });
        }
        assert_round_trip(&varint, &sets);
        assert_round_trip(&bitpack, &sets);
        assert_round_trip(&spill, &sets);

        let mut from_arena = CompressedRrrCollection::new();
        RrrStore::append_arenas(&mut from_arena, &[arena]);
        assert_round_trip(&from_arena, &sets);
        prop_assert!(
            from_arena == varint,
            "arena fill and push fill must encode identically"
        );
    }
}
