//! Forward cascade simulation and Monte-Carlo spread estimation.
//!
//! This is the "diffusion process … described as a probabilistic variant of
//! the Breadth First Search from S" of the paper's problem statement. The
//! Monte-Carlo estimator is used (a) to score the seed sets the algorithms
//! return — the y-axis of Figure 1 — and (b) as the oracle inside the
//! Kempe-greedy/CELF baseline in `ripples-core`.

use crate::model::DiffusionModel;
use rayon::prelude::*;
use ripples_graph::{Graph, Vertex};
use ripples_rng::{RandomSource, StreamFactory};

/// Result of playing one cascade.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CascadeOutcome {
    /// Activated vertices, in activation order (seeds first).
    pub activated: Vec<Vertex>,
    /// Number of time steps until convergence (`t_c` in the paper).
    pub steps: u32,
}

impl CascadeOutcome {
    /// Size of the influence set `|I(S)|`.
    #[must_use]
    pub fn size(&self) -> usize {
        self.activated.len()
    }
}

/// Plays one cascade from `seeds` under `model`.
///
/// Duplicate seeds are ignored; out-of-range seeds panic in debug builds and
/// are ignored in release builds.
#[must_use]
pub fn simulate_cascade<R: RandomSource>(
    graph: &Graph,
    model: DiffusionModel,
    seeds: &[Vertex],
    rng: &mut R,
) -> CascadeOutcome {
    match model {
        DiffusionModel::IndependentCascade => simulate_ic(graph, seeds, rng),
        DiffusionModel::LinearThreshold => simulate_lt(graph, seeds, rng),
    }
}

fn simulate_ic<R: RandomSource>(graph: &Graph, seeds: &[Vertex], rng: &mut R) -> CascadeOutcome {
    let n = graph.num_vertices() as usize;
    let mut active = vec![false; n];
    let mut activated: Vec<Vertex> = Vec::with_capacity(seeds.len());
    for &s in seeds {
        debug_assert!((s as usize) < n, "seed out of range");
        if (s as usize) < n && !active[s as usize] {
            active[s as usize] = true;
            activated.push(s);
        }
    }
    let mut frontier_start = 0usize;
    let mut steps = 0u32;
    while frontier_start < activated.len() {
        let frontier_end = activated.len();
        for i in frontier_start..frontier_end {
            let u = activated[i];
            let targets = graph.out_neighbors(u);
            let probs = graph.out_probs(u);
            for (&v, &p) in targets.iter().zip(probs) {
                if !active[v as usize] && rng.unit_f64() < f64::from(p) {
                    active[v as usize] = true;
                    activated.push(v);
                }
            }
        }
        frontier_start = frontier_end;
        if activated.len() > frontier_start {
            steps += 1;
        }
    }
    CascadeOutcome { activated, steps }
}

fn simulate_lt<R: RandomSource>(graph: &Graph, seeds: &[Vertex], rng: &mut R) -> CascadeOutcome {
    let n = graph.num_vertices() as usize;
    let mut active = vec![false; n];
    // Thresholds are drawn lazily on first contact: a vertex's threshold is
    // only observable once an in-neighbor activates, and lazy drawing keeps
    // the per-cascade cost proportional to touched vertices, not n.
    let mut threshold = vec![f32::NAN; n];
    let mut acc_weight = vec![0.0f32; n];
    let mut activated: Vec<Vertex> = Vec::with_capacity(seeds.len());
    for &s in seeds {
        debug_assert!((s as usize) < n, "seed out of range");
        if (s as usize) < n && !active[s as usize] {
            active[s as usize] = true;
            activated.push(s);
        }
    }
    let mut frontier_start = 0usize;
    let mut steps = 0u32;
    while frontier_start < activated.len() {
        let frontier_end = activated.len();
        for i in frontier_start..frontier_end {
            let u = activated[i];
            let targets = graph.out_neighbors(u);
            let probs = graph.out_probs(u);
            for (&v, &w) in targets.iter().zip(probs) {
                let vi = v as usize;
                if active[vi] {
                    continue;
                }
                if threshold[vi].is_nan() {
                    threshold[vi] = rng.unit_f64() as f32;
                }
                acc_weight[vi] += w;
                if acc_weight[vi] >= threshold[vi] {
                    active[vi] = true;
                    activated.push(v);
                }
            }
        }
        frontier_start = frontier_end;
        if activated.len() > frontier_start {
            steps += 1;
        }
    }
    CascadeOutcome { activated, steps }
}

/// Monte-Carlo estimate of the expected influence `E[|I(S)|]` over `trials`
/// independent cascades.
///
/// Trials run in parallel (rayon) with per-trial RNG streams from
/// `factory`, so the estimate is a pure function of
/// `(graph, model, seeds, trials, factory)` regardless of thread count.
///
/// ```
/// use ripples_diffusion::{estimate_spread, DiffusionModel};
/// use ripples_graph::GraphBuilder;
/// use ripples_rng::StreamFactory;
///
/// // 0 → 1 with certainty: seeding {0} always activates both vertices.
/// let mut b = GraphBuilder::new(2);
/// b.add_edge(0, 1, 1.0).unwrap();
/// let g = b.build().unwrap();
/// let spread = estimate_spread(
///     &g, DiffusionModel::IndependentCascade, &[0], 64, &StreamFactory::new(1),
/// );
/// assert!((spread - 2.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn estimate_spread(
    graph: &Graph,
    model: DiffusionModel,
    seeds: &[Vertex],
    trials: u32,
    factory: &StreamFactory,
) -> f64 {
    if trials == 0 || graph.num_vertices() == 0 {
        return 0.0;
    }
    let total: u64 = spread_samples(graph, model, seeds, trials, factory)
        .into_iter()
        .sum();
    total as f64 / f64::from(trials)
}

/// The per-trial cascade sizes behind [`estimate_spread`]: trial `t` of
/// `trials` is one cascade driven by `factory.trial_stream(t)`, so
/// `estimate_spread` is exactly the mean of this vector.
///
/// The correctness oracle consumes the individual samples to compute the
/// estimator's empirical variance, which turns "forward Monte-Carlo agrees
/// with the RRR coverage estimate" into a CLT-calibrated check instead of a
/// hand-tuned tolerance.
#[must_use]
pub fn spread_samples(
    graph: &Graph,
    model: DiffusionModel,
    seeds: &[Vertex],
    trials: u32,
    factory: &StreamFactory,
) -> Vec<u64> {
    if graph.num_vertices() == 0 {
        return vec![0; trials as usize];
    }
    (0..trials)
        .into_par_iter()
        .map(|t| {
            let mut rng = factory.trial_stream(u64::from(t));
            simulate_cascade(graph, model, seeds, &mut rng).size() as u64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripples_graph::GraphBuilder;
    use ripples_rng::SplitMix64;

    fn path(n: u32, p: f32) -> Graph {
        let mut b = GraphBuilder::new(n);
        for u in 0..n - 1 {
            b.add_edge(u, u + 1, p).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn ic_deterministic_edges() {
        let g = path(5, 1.0);
        let mut rng = SplitMix64::new(1);
        let out = simulate_cascade(&g, DiffusionModel::IndependentCascade, &[0], &mut rng);
        assert_eq!(out.activated, vec![0, 1, 2, 3, 4]);
        assert_eq!(out.steps, 4);
    }

    #[test]
    fn ic_zero_edges() {
        let g = path(5, 0.0);
        let mut rng = SplitMix64::new(1);
        let out = simulate_cascade(&g, DiffusionModel::IndependentCascade, &[2], &mut rng);
        assert_eq!(out.activated, vec![2]);
        assert_eq!(out.steps, 0);
    }

    #[test]
    fn duplicate_seeds_ignored() {
        let g = path(3, 1.0);
        let mut rng = SplitMix64::new(1);
        let out = simulate_cascade(&g, DiffusionModel::IndependentCascade, &[0, 0, 1], &mut rng);
        assert_eq!(out.activated.len(), 3);
    }

    #[test]
    fn lt_certain_weights_cascade() {
        // Weight-1 edges always exceed any threshold in [0,1).
        let g = path(4, 1.0);
        let mut rng = SplitMix64::new(9);
        let out = simulate_cascade(&g, DiffusionModel::LinearThreshold, &[0], &mut rng);
        assert_eq!(out.activated, vec![0, 1, 2, 3]);
    }

    #[test]
    fn lt_half_weight_frequency() {
        // Single in-edge of weight 0.5: activation prob = P(threshold ≤ 0.5).
        let g = path(2, 0.5);
        let n = 4000;
        let mut hits = 0;
        for t in 0..n {
            let mut rng = SplitMix64::new(1000 + t as u64);
            let out = simulate_cascade(&g, DiffusionModel::LinearThreshold, &[0], &mut rng);
            if out.size() == 2 {
                hits += 1;
            }
        }
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.5).abs() < 0.05, "freq {freq}");
    }

    #[test]
    fn ic_quarter_probability_frequency() {
        let g = path(2, 0.25);
        let n = 8000;
        let mut hits = 0;
        for t in 0..n {
            let mut rng = SplitMix64::new(5000 + t as u64);
            if simulate_cascade(&g, DiffusionModel::IndependentCascade, &[0], &mut rng).size() == 2
            {
                hits += 1;
            }
        }
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.25).abs() < 0.03, "freq {freq}");
    }

    #[test]
    fn estimate_spread_exact_on_certain_path() {
        let g = path(6, 1.0);
        let f = StreamFactory::new(7);
        let s = estimate_spread(&g, DiffusionModel::IndependentCascade, &[0], 32, &f);
        assert!((s - 6.0).abs() < 1e-9);
    }

    #[test]
    fn estimate_spread_deterministic() {
        let g = path(8, 0.4);
        let f = StreamFactory::new(42);
        let a = estimate_spread(&g, DiffusionModel::IndependentCascade, &[0], 500, &f);
        let b = estimate_spread(&g, DiffusionModel::IndependentCascade, &[0], 500, &f);
        assert_eq!(a, b);
    }

    #[test]
    fn estimate_spread_monotone_in_seeds() {
        let g = path(8, 0.4);
        let f = StreamFactory::new(42);
        let one = estimate_spread(&g, DiffusionModel::IndependentCascade, &[4], 800, &f);
        let two = estimate_spread(&g, DiffusionModel::IndependentCascade, &[0, 4], 800, &f);
        assert!(
            two >= one,
            "adding a seed cannot reduce spread: {one} vs {two}"
        );
    }

    #[test]
    fn spread_samples_mean_is_estimate() {
        let g = path(8, 0.4);
        let f = StreamFactory::new(13);
        let samples = spread_samples(&g, DiffusionModel::IndependentCascade, &[0], 300, &f);
        assert_eq!(samples.len(), 300);
        let mean = samples.iter().sum::<u64>() as f64 / 300.0;
        let est = estimate_spread(&g, DiffusionModel::IndependentCascade, &[0], 300, &f);
        assert!((mean - est).abs() < 1e-12);
        // Every sample includes at least the seed.
        assert!(samples.iter().all(|&s| s >= 1));
    }

    #[test]
    fn zero_trials_zero_spread() {
        let g = path(3, 1.0);
        let f = StreamFactory::new(1);
        assert_eq!(
            estimate_spread(&g, DiffusionModel::IndependentCascade, &[0], 0, &f),
            0.0
        );
    }

    #[test]
    fn empty_seed_set_spreads_nothing() {
        let g = path(3, 1.0);
        let f = StreamFactory::new(1);
        assert_eq!(
            estimate_spread(&g, DiffusionModel::IndependentCascade, &[], 16, &f),
            0.0
        );
    }
}
