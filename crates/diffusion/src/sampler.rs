//! Batch RRR-set generation (Algorithm 3's parallel loop).
//!
//! Samples are indexed *globally*: sample `i` draws its root and its edge
//! coin-flips from `factory.sample_stream(i)`. Consequently the content of
//! the collection is a pure function of `(graph, model, factory, range)` —
//! identical across thread counts, rank counts, and partitions, which is
//! what lets the test suite assert sequential ≡ multithreaded ≡ distributed.

use crate::model::DiffusionModel;
use crate::rrr::{generate_rrr, generate_rrr_into, RrrScratch, SampleArena};
use crate::store::RrrStore;
use rayon::prelude::*;
use ripples_graph::{Graph, Vertex};
use ripples_rng::StreamFactory;

/// Statistics of one sampling batch.
#[derive(Clone, Debug, Default)]
pub struct BatchOutcome {
    /// Per-sample in-edges examined, aligned with the batch's samples; the
    /// work units consumed by the strong-scaling replay model.
    pub work_per_sample: Vec<u64>,
    /// Sample counts per worker under the contiguous block partition used
    /// for generation (one entry per worker that received at least one
    /// sample). Sequential paths report the whole batch as one worker.
    pub per_worker_samples: Vec<u64>,
    /// Reserved bytes summed over the worker-local sample arenas of this
    /// batch — transient sampling memory beyond the merged collection.
    /// Sequential paths, which push straight into the collection, report 0.
    pub arena_bytes: usize,
    /// Frontier passes executed by the fused multi-cascade kernel (0 for
    /// the reference sampler; see [`crate::fused::sample_batch_fused`]).
    pub fused_passes: u64,
    /// Bytes of per-vertex activation-mask scratch summed over workers
    /// (0 for the reference sampler).
    pub mask_bytes: usize,
    /// Histogram of active lanes per expanded frontier vertex: slot `w`
    /// counts expansions whose mask had `w` set bits (length
    /// `FUSED_LANES + 1`; empty for the reference sampler).
    pub lane_width_counts: Vec<u64>,
}

impl BatchOutcome {
    /// Total edges examined in the batch.
    #[must_use]
    pub fn total_work(&self) -> u64 {
        self.work_per_sample.iter().sum()
    }

    /// Folds a follow-up sub-batch into `self` (used when one logical batch
    /// is generated in two pieces, e.g. the probe + remainder split of the
    /// auto sampling dispatch). Per-sample vectors concatenate; transient
    /// memory figures take the max since the pieces' scratch never coexists.
    pub fn absorb(&mut self, other: BatchOutcome) {
        self.work_per_sample
            .extend_from_slice(&other.work_per_sample);
        self.per_worker_samples
            .extend_from_slice(&other.per_worker_samples);
        self.arena_bytes = self.arena_bytes.max(other.arena_bytes);
        self.fused_passes += other.fused_passes;
        self.mask_bytes = self.mask_bytes.max(other.mask_bytes);
        if self.lane_width_counts.len() < other.lane_width_counts.len() {
            self.lane_width_counts
                .resize(other.lane_width_counts.len(), 0);
        }
        for (slot, c) in self
            .lane_width_counts
            .iter_mut()
            .zip(&other.lane_width_counts)
        {
            *slot += c;
        }
    }
}

/// Verifies the Linear Threshold precondition before any LT sampling runs:
/// every vertex's in-weights must sum to ≤ 1 (Kempe et al.'s model
/// definition — the remainder is the "no incoming live edge" mass).
/// Sampling from un-normalized weights is *silently biased* — `generate_rrr`
/// would treat any `Σw > 1` tail as extra activation mass — so this check
/// runs in every build profile and fails fast instead.
///
/// The tolerance absorbs f32 rounding of weights that were normalized in
/// f64 by [`ripples_graph::GraphBuilder::normalize_for_lt`].
///
/// # Panics
///
/// Panics naming the first offending vertex when some in-weight sum
/// exceeds 1.
pub fn ensure_lt_normalized(graph: &Graph) {
    for v in 0..graph.num_vertices() {
        let sum = graph.in_weight_sum(v);
        assert!(
            sum <= 1.0 + 1e-4,
            "Linear Threshold sampling requires in-weights summing to <= 1, \
             but vertex {v} has in-weight sum {sum:.6}; build the graph with \
             GraphBuilder::normalize_for_lt() (CLI graph builders pass \
             lt_normalize=true for --model lt)"
        );
    }
}

/// Runs [`ensure_lt_normalized`] when `model` is Linear Threshold.
#[inline]
pub(crate) fn validate_model_weights(graph: &Graph, model: DiffusionModel) {
    if model == DiffusionModel::LinearThreshold {
        ensure_lt_normalized(graph);
    }
}

/// Draws the root vertex for global sample `index`.
///
/// The root draw is the first draw of the sample's stream ("Select v ∈ V
/// uniformly at random", Algorithm 3).
#[inline]
fn sample_root(
    graph: &Graph,
    factory: &StreamFactory,
    index: u64,
) -> (Vertex, ripples_rng::SplitMix64) {
    let mut rng = factory.sample_stream(index);
    let root = rng.bounded_u64(u64::from(graph.num_vertices())) as Vertex;
    (root, rng)
}

/// The root vertex global sample `index` draws, without the rest of the
/// stream — shared by every sampler (the fused kernel reproduces exactly
/// these roots), and used by the oracle's root-distribution checks.
#[inline]
#[must_use]
pub fn sample_root_of(graph: &Graph, factory: &StreamFactory, index: u64) -> Vertex {
    sample_root(graph, factory, index).0
}

/// Generates samples `first_index .. first_index + count` in parallel and
/// appends them to `out` in index order.
///
/// # Panics
///
/// Panics if the graph has no vertices and `count > 0`.
pub fn sample_batch<S: RrrStore>(
    graph: &Graph,
    model: DiffusionModel,
    factory: &StreamFactory,
    first_index: u64,
    count: usize,
    out: &mut S,
) -> BatchOutcome {
    assert!(
        count == 0 || graph.num_vertices() > 0,
        "cannot sample from an empty graph"
    );
    validate_model_weights(graph, model);
    // Parallel generation over a contiguous block partition, one block per
    // worker. Each worker appends its samples into a local flat arena (no
    // per-sample Vec), and the arenas are merged into `out` by parallel
    // bulk copy in index order, so the collection layout is deterministic;
    // each sample's content depends only on its global index, so the
    // result is identical for any worker count. Each non-empty block emits
    // one `sample-chunk` trace span, giving the timeline a per-worker view
    // of batch load imbalance.
    let workers = rayon::current_num_threads().max(1);
    let nchunks = workers.min(count.max(1));
    let chunks: Vec<(SampleArena, Vec<u64>)> = (0..nchunks as u64)
        .into_par_iter()
        .map_init(
            || RrrScratch::new(graph.num_vertices()),
            |scratch, chunk| {
                let chunk = chunk as usize;
                let lo = count * chunk / nchunks;
                let hi = count * (chunk + 1) / nchunks;
                let t0 = (hi > lo && ripples_trace::enabled()).then(std::time::Instant::now);
                let mut arena = SampleArena::with_capacity(hi - lo);
                let mut works = Vec::with_capacity(hi - lo);
                for offset in lo..hi {
                    let index = first_index + offset as u64;
                    let (root, mut rng) = sample_root(graph, factory, index);
                    let work = arena.append_with(|buf| {
                        generate_rrr_into(graph, model, root, &mut rng, scratch, buf)
                    });
                    works.push(work);
                }
                if let Some(t0) = t0 {
                    ripples_trace::complete(
                        ripples_trace::TraceName::SampleChunk,
                        t0,
                        first_index + lo as u64,
                        (hi - lo) as u64,
                    );
                }
                (arena, works)
            },
        )
        .collect();
    let arena_bytes: usize = chunks.iter().map(|(a, _)| a.reserved_bytes()).sum();
    if ripples_metrics::enabled() {
        ripples_metrics::set_max(ripples_metrics::Metric::ArenaBytes, arena_bytes as u64);
    }
    // The per-worker load partition is derived from the chunks actually
    // generated, not re-computed from a formula: the generation loop
    // partitions over `nchunks` (≤ workers), and an independent formula
    // over `workers` can disagree with the real chunk bounds — the
    // strong-scaling replay model must see the true partition.
    let mut outcome = BatchOutcome {
        work_per_sample: Vec::with_capacity(count),
        per_worker_samples: chunks
            .iter()
            .map(|(a, _)| a.len() as u64)
            .filter(|&c| c > 0)
            .collect(),
        arena_bytes,
        ..BatchOutcome::default()
    };
    let arenas: Vec<SampleArena> = chunks
        .into_iter()
        .map(|(arena, works)| {
            outcome.work_per_sample.extend_from_slice(&works);
            arena
        })
        .collect();
    out.append_arenas(&arenas);
    outcome
}

/// Sequential reference version of [`sample_batch`]; produces bitwise
/// identical output (used by the serial baselines and by tests).
pub fn sample_batch_sequential<S: RrrStore>(
    graph: &Graph,
    model: DiffusionModel,
    factory: &StreamFactory,
    first_index: u64,
    count: usize,
    out: &mut S,
) -> BatchOutcome {
    assert!(
        count == 0 || graph.num_vertices() > 0,
        "cannot sample from an empty graph"
    );
    validate_model_weights(graph, model);
    let mut scratch = RrrScratch::new(graph.num_vertices());
    let mut outcome = BatchOutcome {
        work_per_sample: Vec::with_capacity(count),
        per_worker_samples: if count > 0 {
            vec![count as u64]
        } else {
            Vec::new()
        },
        ..BatchOutcome::default()
    };
    for offset in 0..count as u64 {
        let index = first_index + offset;
        let (root, mut rng) = sample_root(graph, factory, index);
        let s = generate_rrr(graph, model, root, &mut rng, &mut scratch);
        out.push(&s.vertices);
        outcome.work_per_sample.push(s.edges_examined);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rrr::RrrCollection;
    use ripples_graph::generators::erdos_renyi;
    use ripples_graph::WeightModel;

    fn graph() -> Graph {
        erdos_renyi(300, 2000, WeightModel::UniformRandom { seed: 3 }, false, 99)
    }

    /// LT sampling requires normalized in-weights ([`ensure_lt_normalized`]).
    fn lt_graph() -> Graph {
        erdos_renyi(300, 2000, WeightModel::UniformRandom { seed: 3 }, true, 99)
    }

    fn graph_for(model: DiffusionModel) -> Graph {
        match model {
            DiffusionModel::IndependentCascade => graph(),
            DiffusionModel::LinearThreshold => lt_graph(),
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let f = StreamFactory::new(1234);
        for model in [
            DiffusionModel::IndependentCascade,
            DiffusionModel::LinearThreshold,
        ] {
            let g = graph_for(model);
            let mut par = RrrCollection::new();
            let mut seq = RrrCollection::new();
            let po = sample_batch(&g, model, &f, 0, 500, &mut par);
            let so = sample_batch_sequential(&g, model, &f, 0, 500, &mut seq);
            assert_eq!(par, seq, "collections differ under {model}");
            assert_eq!(po.work_per_sample, so.work_per_sample);
        }
    }

    #[test]
    fn per_worker_samples_match_real_chunk_partition() {
        // Regression: with fewer samples than pool threads, generation
        // partitions over `nchunks = min(workers, count)` chunks; the
        // reported per-worker counts must come from those real chunks, not
        // from a formula over all `workers` threads.
        let g = graph();
        let f = StreamFactory::new(9);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(8)
            .build()
            .expect("pool");
        for count in [1usize, 3, 7] {
            let o = pool.install(|| {
                let mut c = RrrCollection::new();
                sample_batch(&g, DiffusionModel::IndependentCascade, &f, 0, count, &mut c)
            });
            assert_eq!(
                o.per_worker_samples,
                vec![1u64; count],
                "count {count} under 8 workers must map one sample per chunk"
            );
            assert_eq!(o.per_worker_samples.iter().sum::<u64>(), count as u64);
        }
        // And at count ≥ workers the partition still accounts for every
        // sample across exactly `workers` chunks.
        let o = pool.install(|| {
            let mut c = RrrCollection::new();
            sample_batch(&g, DiffusionModel::IndependentCascade, &f, 0, 100, &mut c)
        });
        assert_eq!(o.per_worker_samples.len(), 8);
        assert_eq!(o.per_worker_samples.iter().sum::<u64>(), 100);
    }

    #[test]
    #[should_panic(expected = "in-weight sum")]
    fn lt_unnormalized_rejected_parallel() {
        let g = graph(); // un-normalized uniform weights: in-sums ≫ 1
        let f = StreamFactory::new(1);
        let mut c = RrrCollection::new();
        sample_batch(&g, DiffusionModel::LinearThreshold, &f, 0, 4, &mut c);
    }

    #[test]
    #[should_panic(expected = "in-weight sum")]
    fn lt_unnormalized_rejected_sequential() {
        let g = graph();
        let f = StreamFactory::new(1);
        let mut c = RrrCollection::new();
        sample_batch_sequential(&g, DiffusionModel::LinearThreshold, &f, 0, 4, &mut c);
    }

    #[test]
    fn lt_normalized_graphs_accepted() {
        ensure_lt_normalized(&lt_graph());
    }

    #[test]
    fn arena_merge_bitwise_equal_across_thread_counts() {
        // The arena path must reproduce sample_batch_sequential's layout
        // bit for bit at every worker count (acceptance criterion of the
        // arena rewrite).
        let g = graph();
        let f = StreamFactory::new(2024);
        let model = DiffusionModel::IndependentCascade;
        let mut seq = RrrCollection::new();
        let so = sample_batch_sequential(&g, model, &f, 0, 700, &mut seq);
        for threads in [1usize, 2, 3, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let (par, po) = pool.install(|| {
                let mut par = RrrCollection::new();
                let po = sample_batch(&g, model, &f, 0, 700, &mut par);
                (par, po)
            });
            assert_eq!(par, seq, "collections differ at {threads} threads");
            assert_eq!(po.work_per_sample, so.work_per_sample);
            assert!(po.arena_bytes > 0, "worker arenas unreported");
        }
    }

    #[test]
    fn batches_compose() {
        // Sampling [0,100) then [100,200) equals sampling [0,200).
        let g = graph();
        let f = StreamFactory::new(77);
        let model = DiffusionModel::IndependentCascade;
        let mut split = RrrCollection::new();
        sample_batch(&g, model, &f, 0, 100, &mut split);
        sample_batch(&g, model, &f, 100, 100, &mut split);
        let mut whole = RrrCollection::new();
        sample_batch(&g, model, &f, 0, 200, &mut whole);
        assert_eq!(split, whole);
    }

    #[test]
    fn work_counts_match_samples() {
        let g = graph();
        let f = StreamFactory::new(5);
        let mut c = RrrCollection::new();
        let o = sample_batch(&g, DiffusionModel::IndependentCascade, &f, 0, 64, &mut c);
        assert_eq!(o.work_per_sample.len(), 64);
        assert_eq!(c.len(), 64);
        assert!(o.total_work() > 0);
    }

    #[test]
    fn empty_batch_is_noop() {
        let g = graph();
        let f = StreamFactory::new(5);
        let mut c = RrrCollection::new();
        let o = sample_batch(&g, DiffusionModel::IndependentCascade, &f, 0, 0, &mut c);
        assert!(c.is_empty());
        assert_eq!(o.total_work(), 0);
    }

    #[test]
    fn roots_cover_vertex_space() {
        let g = lt_graph();
        let f = StreamFactory::new(31);
        let mut c = RrrCollection::new();
        sample_batch(&g, DiffusionModel::LinearThreshold, &f, 0, 2000, &mut c);
        // Every sample contains its root; LT sets are small, so the union of
        // singleton-ish sets should span a large share of the vertex space.
        let mut seen = vec![false; g.num_vertices() as usize];
        for s in c.iter() {
            for &v in s {
                seen[v as usize] = true;
            }
        }
        let covered = seen.iter().filter(|&&b| b).count();
        assert!(covered > 200, "only {covered} vertices ever sampled");
    }
}
