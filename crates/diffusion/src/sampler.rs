//! Batch RRR-set generation (Algorithm 3's parallel loop).
//!
//! Samples are indexed *globally*: sample `i` draws its root and its edge
//! coin-flips from `factory.sample_stream(i)`. Consequently the content of
//! the collection is a pure function of `(graph, model, factory, range)` —
//! identical across thread counts, rank counts, and partitions, which is
//! what lets the test suite assert sequential ≡ multithreaded ≡ distributed.

use crate::model::DiffusionModel;
use crate::rrr::{generate_rrr, generate_rrr_into, RrrCollection, RrrScratch, SampleArena};
use rayon::prelude::*;
use ripples_graph::{Graph, Vertex};
use ripples_rng::StreamFactory;

/// Statistics of one sampling batch.
#[derive(Clone, Debug, Default)]
pub struct BatchOutcome {
    /// Per-sample in-edges examined, aligned with the batch's samples; the
    /// work units consumed by the strong-scaling replay model.
    pub work_per_sample: Vec<u64>,
    /// Sample counts per worker under the contiguous block partition used
    /// for generation (one entry per worker that received at least one
    /// sample). Sequential paths report the whole batch as one worker.
    pub per_worker_samples: Vec<u64>,
    /// Reserved bytes summed over the worker-local sample arenas of this
    /// batch — transient sampling memory beyond the merged collection.
    /// Sequential paths, which push straight into the collection, report 0.
    pub arena_bytes: usize,
}

impl BatchOutcome {
    /// Total edges examined in the batch.
    #[must_use]
    pub fn total_work(&self) -> u64 {
        self.work_per_sample.iter().sum()
    }
}

/// Draws the root vertex for global sample `index`.
///
/// The root draw is the first draw of the sample's stream ("Select v ∈ V
/// uniformly at random", Algorithm 3).
#[inline]
fn sample_root(
    graph: &Graph,
    factory: &StreamFactory,
    index: u64,
) -> (Vertex, ripples_rng::SplitMix64) {
    let mut rng = factory.sample_stream(index);
    let root = rng.bounded_u64(u64::from(graph.num_vertices())) as Vertex;
    (root, rng)
}

/// Generates samples `first_index .. first_index + count` in parallel and
/// appends them to `out` in index order.
///
/// # Panics
///
/// Panics if the graph has no vertices and `count > 0`.
pub fn sample_batch(
    graph: &Graph,
    model: DiffusionModel,
    factory: &StreamFactory,
    first_index: u64,
    count: usize,
    out: &mut RrrCollection,
) -> BatchOutcome {
    assert!(
        count == 0 || graph.num_vertices() > 0,
        "cannot sample from an empty graph"
    );
    // Parallel generation over the contiguous block partition of
    // `worker_sample_counts`, one block per worker. Each worker appends its
    // samples into a local flat arena (no per-sample Vec), and the arenas
    // are merged into `out` by parallel bulk copy in index order, so the
    // collection layout is deterministic; each sample's content depends
    // only on its global index, so the result is identical for any worker
    // count. Each non-empty block emits one `sample-chunk` trace span,
    // giving the timeline a per-worker view of batch load imbalance.
    let workers = rayon::current_num_threads().max(1);
    let nchunks = workers.min(count.max(1));
    let chunks: Vec<(SampleArena, Vec<u64>)> = (0..nchunks as u64)
        .into_par_iter()
        .map_init(
            || RrrScratch::new(graph.num_vertices()),
            |scratch, chunk| {
                let chunk = chunk as usize;
                let lo = count * chunk / nchunks;
                let hi = count * (chunk + 1) / nchunks;
                let t0 = (hi > lo && ripples_trace::enabled()).then(std::time::Instant::now);
                let mut arena = SampleArena::with_capacity(hi - lo);
                let mut works = Vec::with_capacity(hi - lo);
                for offset in lo..hi {
                    let index = first_index + offset as u64;
                    let (root, mut rng) = sample_root(graph, factory, index);
                    let work = arena.append_with(|buf| {
                        generate_rrr_into(graph, model, root, &mut rng, scratch, buf)
                    });
                    works.push(work);
                }
                if let Some(t0) = t0 {
                    ripples_trace::complete(
                        ripples_trace::TraceName::SampleChunk,
                        t0,
                        first_index + lo as u64,
                        (hi - lo) as u64,
                    );
                }
                (arena, works)
            },
        )
        .collect();
    let arena_bytes: usize = chunks.iter().map(|(a, _)| a.reserved_bytes()).sum();
    if ripples_trace::enabled() {
        ripples_trace::counter(ripples_trace::TraceName::ArenaBytes, arena_bytes as u64);
    }
    let mut outcome = BatchOutcome {
        work_per_sample: Vec::with_capacity(count),
        per_worker_samples: worker_sample_counts(count, workers),
        arena_bytes,
    };
    let arenas: Vec<SampleArena> = chunks
        .into_iter()
        .map(|(arena, works)| {
            outcome.work_per_sample.extend_from_slice(&works);
            arena
        })
        .collect();
    out.append_arenas(&arenas);
    outcome
}

/// The contiguous block partition of `count` samples over `workers`
/// threads (how the parallel batch is load-balanced): worker `t` handles
/// `count·(t+1)/workers − count·t/workers` samples. Zero-sample workers
/// are omitted.
fn worker_sample_counts(count: usize, workers: usize) -> Vec<u64> {
    (0..workers)
        .map(|t| (count * (t + 1) / workers - count * t / workers) as u64)
        .filter(|&c| c > 0)
        .collect()
}

/// Sequential reference version of [`sample_batch`]; produces bitwise
/// identical output (used by the serial baselines and by tests).
pub fn sample_batch_sequential(
    graph: &Graph,
    model: DiffusionModel,
    factory: &StreamFactory,
    first_index: u64,
    count: usize,
    out: &mut RrrCollection,
) -> BatchOutcome {
    assert!(
        count == 0 || graph.num_vertices() > 0,
        "cannot sample from an empty graph"
    );
    let mut scratch = RrrScratch::new(graph.num_vertices());
    let mut outcome = BatchOutcome {
        work_per_sample: Vec::with_capacity(count),
        per_worker_samples: if count > 0 {
            vec![count as u64]
        } else {
            Vec::new()
        },
        arena_bytes: 0,
    };
    for offset in 0..count as u64 {
        let index = first_index + offset;
        let (root, mut rng) = sample_root(graph, factory, index);
        let s = generate_rrr(graph, model, root, &mut rng, &mut scratch);
        out.push(&s.vertices);
        outcome.work_per_sample.push(s.edges_examined);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripples_graph::generators::erdos_renyi;
    use ripples_graph::WeightModel;

    fn graph() -> Graph {
        erdos_renyi(300, 2000, WeightModel::UniformRandom { seed: 3 }, false, 99)
    }

    #[test]
    fn parallel_equals_sequential() {
        let g = graph();
        let f = StreamFactory::new(1234);
        for model in [
            DiffusionModel::IndependentCascade,
            DiffusionModel::LinearThreshold,
        ] {
            let mut par = RrrCollection::new();
            let mut seq = RrrCollection::new();
            let po = sample_batch(&g, model, &f, 0, 500, &mut par);
            let so = sample_batch_sequential(&g, model, &f, 0, 500, &mut seq);
            assert_eq!(par, seq, "collections differ under {model}");
            assert_eq!(po.work_per_sample, so.work_per_sample);
        }
    }

    #[test]
    fn arena_merge_bitwise_equal_across_thread_counts() {
        // The arena path must reproduce sample_batch_sequential's layout
        // bit for bit at every worker count (acceptance criterion of the
        // arena rewrite).
        let g = graph();
        let f = StreamFactory::new(2024);
        let model = DiffusionModel::IndependentCascade;
        let mut seq = RrrCollection::new();
        let so = sample_batch_sequential(&g, model, &f, 0, 700, &mut seq);
        for threads in [1usize, 2, 3, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let (par, po) = pool.install(|| {
                let mut par = RrrCollection::new();
                let po = sample_batch(&g, model, &f, 0, 700, &mut par);
                (par, po)
            });
            assert_eq!(par, seq, "collections differ at {threads} threads");
            assert_eq!(po.work_per_sample, so.work_per_sample);
            assert!(po.arena_bytes > 0, "worker arenas unreported");
        }
    }

    #[test]
    fn batches_compose() {
        // Sampling [0,100) then [100,200) equals sampling [0,200).
        let g = graph();
        let f = StreamFactory::new(77);
        let model = DiffusionModel::IndependentCascade;
        let mut split = RrrCollection::new();
        sample_batch(&g, model, &f, 0, 100, &mut split);
        sample_batch(&g, model, &f, 100, 100, &mut split);
        let mut whole = RrrCollection::new();
        sample_batch(&g, model, &f, 0, 200, &mut whole);
        assert_eq!(split, whole);
    }

    #[test]
    fn work_counts_match_samples() {
        let g = graph();
        let f = StreamFactory::new(5);
        let mut c = RrrCollection::new();
        let o = sample_batch(&g, DiffusionModel::IndependentCascade, &f, 0, 64, &mut c);
        assert_eq!(o.work_per_sample.len(), 64);
        assert_eq!(c.len(), 64);
        assert!(o.total_work() > 0);
    }

    #[test]
    fn empty_batch_is_noop() {
        let g = graph();
        let f = StreamFactory::new(5);
        let mut c = RrrCollection::new();
        let o = sample_batch(&g, DiffusionModel::IndependentCascade, &f, 0, 0, &mut c);
        assert!(c.is_empty());
        assert_eq!(o.total_work(), 0);
    }

    #[test]
    fn roots_cover_vertex_space() {
        let g = graph();
        let f = StreamFactory::new(31);
        let mut c = RrrCollection::new();
        sample_batch(&g, DiffusionModel::LinearThreshold, &f, 0, 2000, &mut c);
        // Every sample contains its root; LT sets are small, so the union of
        // singleton-ish sets should span a large share of the vertex space.
        let mut seen = vec![false; g.num_vertices() as usize];
        for s in c.iter() {
            for &v in s {
                seen[v as usize] = true;
            }
        }
        let covered = seen.iter().filter(|&&b| b).count();
        assert!(covered > 200, "only {covered} vertices ever sampled");
    }
}
