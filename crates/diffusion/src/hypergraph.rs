//! The two-direction "hypergraph" sample storage of Tang et al.'s original
//! IMM implementation — the measured baseline of Table 2.
//!
//! *"Previous implementations store this information in two directions using
//! the notion of a hypergraph, where each RRR set (or sample) is a hyperedge
//! consisting of a subset of vertices in the input graph. Information for
//! each vertex about the samples that it participates in is also maintained.
//! Thus, each association between a sample and a vertex is stored twice.
//! While this information aids in faster selection of seed set later, the
//! memory footprint can become a limitation."* (§3.1)
//!
//! This struct materializes exactly that layout: the sample→vertex arena
//! plus the inverted vertex→sample index, so the Table 2 experiment can
//! measure the memory gap and the seed-selection speed trade the paper
//! describes.

use crate::rrr::RrrCollection;
use ripples_graph::Vertex;

/// Two-direction RRR storage: samples by id *and* an inverted index from
/// vertex to the samples containing it.
#[derive(Clone, Debug)]
pub struct HyperGraph {
    sets: RrrCollection,
    /// CSR offsets into `vertex_to_sets`, one slot per vertex.
    index_offsets: Vec<usize>,
    /// Sample ids, grouped by vertex.
    vertex_to_sets: Vec<u32>,
}

impl HyperGraph {
    /// Builds the inverted index over an existing sample collection.
    ///
    /// # Panics
    ///
    /// Panics if a sample references a vertex ≥ `num_vertices` or if there
    /// are ≥ 2³² samples.
    #[must_use]
    pub fn build(sets: RrrCollection, num_vertices: u32) -> Self {
        assert!(
            sets.len() < u32::MAX as usize,
            "too many samples for u32 ids"
        );
        let n = num_vertices as usize;
        let mut counts = vec![0usize; n + 1];
        for set in sets.iter() {
            for &v in set {
                assert!((v as usize) < n, "sample vertex {v} out of range");
                counts[v as usize + 1] += 1;
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let index_offsets = counts;
        let mut cursor = index_offsets.clone();
        let mut vertex_to_sets = vec![0u32; sets.total_entries()];
        for (sid, set) in sets.iter().enumerate() {
            for &v in set {
                let slot = cursor[v as usize];
                vertex_to_sets[slot] = sid as u32;
                cursor[v as usize] += 1;
            }
        }
        Self {
            sets,
            index_offsets,
            vertex_to_sets,
        }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True when no samples are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The sample collection (sample → vertices direction).
    #[must_use]
    pub fn sets(&self) -> &RrrCollection {
        &self.sets
    }

    /// Sample ids containing `v` (vertex → samples direction), ascending.
    #[must_use]
    pub fn samples_containing(&self, v: Vertex) -> &[u32] {
        let v = v as usize;
        &self.vertex_to_sets[self.index_offsets[v]..self.index_offsets[v + 1]]
    }

    /// Occurrence count of `v` across samples — the initial greedy counter.
    #[must_use]
    pub fn degree(&self, v: Vertex) -> usize {
        self.samples_containing(v).len()
    }

    /// Resident bytes of *both* directions — the "IMM" memory columns of
    /// Table 2. Reports reserved capacity (real allocated memory), matching
    /// [`RrrCollection::resident_bytes`].
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.sets.resident_bytes()
            + self.index_offsets.capacity() * size_of::<usize>()
            + self.vertex_to_sets.capacity() * size_of::<u32>()
    }
}

/// Compact one-direction-plus-index storage for the fused selection engine:
/// a u32-offset CSR inverted index (vertex → containing samples) built
/// *over* an existing [`RrrCollection`] without copying the samples.
///
/// Compared with [`HyperGraph`] — which owns a second full copy of every
/// association plus `usize` offsets — this index borrows the collection and
/// stores each association once as a `u32` sample id with `u32` offsets:
/// ~⅓ of the hypergraph's index bytes on 64-bit targets, which is what
/// makes "fast selection" affordable within the paper's compact-layout
/// memory budget (§3.1's 2×-memory caveat).
///
/// The build is a parallel counting sort with the same vertex-interval
/// ownership as Algorithm 4's partitioned counters: each of `p` owners
/// counts and then fills only its interval's rows, navigating each sorted
/// sample by binary search — disjoint writes, no atomics.
#[derive(Clone, Debug)]
pub struct SampleIndex {
    /// CSR offsets into `samples`, one slot per vertex plus a sentinel.
    offsets: Vec<u32>,
    /// Sample ids, grouped by vertex, ascending within each vertex.
    samples: Vec<u32>,
}

impl SampleIndex {
    /// Builds the index with `partitions` parallel interval owners
    /// (clamped to `[1, num_vertices]`; 1 runs serially with no task
    /// spawns, which the per-rank distributed selection path relies on).
    ///
    /// # Panics
    ///
    /// Panics if a sample references a vertex ≥ `num_vertices`, or if the
    /// sample count or total entry count overflows `u32`.
    #[must_use]
    pub fn build(sets: &RrrCollection, num_vertices: u32, partitions: usize) -> Self {
        let n = num_vertices as usize;
        assert!(
            sets.len() < u32::MAX as usize,
            "too many samples for u32 ids"
        );
        assert!(
            sets.total_entries() < u32::MAX as usize,
            "too many associations for u32 offsets"
        );
        let p = partitions.clamp(1, n.max(1));
        let bounds: Vec<(Vertex, Vertex)> = (0..p)
            .map(|t| (((n * t) / p) as Vertex, ((n * (t + 1)) / p) as Vertex))
            .collect();

        // Counting pass: occurrences per vertex, each interval owner
        // writing only its disjoint slice.
        let mut counts = vec![0u32; n];
        if p == 1 {
            for set in sets.iter() {
                for &v in set {
                    assert!((v as usize) < n, "sample vertex {v} out of range");
                    counts[v as usize] += 1;
                }
            }
        } else {
            let mut rest: &mut [u32] = &mut counts;
            rayon::scope(|s| {
                for &(vl, vh) in &bounds {
                    let (slice, tail) = rest.split_at_mut((vh - vl) as usize);
                    rest = tail;
                    s.spawn(move |_| {
                        for j in 0..sets.len() {
                            for &u in sets.partition_slice(j, vl, vh) {
                                slice[(u - vl) as usize] += 1;
                            }
                        }
                    });
                }
            });
        }

        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &c in &counts {
            acc += c;
            offsets.push(acc);
        }
        // In the parallel pass an out-of-range vertex lands in no interval
        // and is silently skipped; the totals check catches it here.
        assert_eq!(
            acc as usize,
            sets.total_entries(),
            "sample vertex out of range"
        );

        // Fill pass: vertex `v`'s row occupies `offsets[v]..offsets[v+1]`,
        // so an owner's rows form one contiguous region — again disjoint.
        // Iterating samples in ascending id keeps every row sorted.
        let mut samples = vec![0u32; sets.total_entries()];
        if p == 1 {
            let mut cursor: Vec<u32> = offsets[..n].to_vec();
            for (j, set) in sets.iter().enumerate() {
                for &v in set {
                    let c = &mut cursor[v as usize];
                    samples[*c as usize] = j as u32;
                    *c += 1;
                }
            }
        } else {
            let offsets_ref = &offsets;
            let mut rest: &mut [u32] = &mut samples;
            rayon::scope(|s| {
                for &(vl, vh) in &bounds {
                    let base = offsets_ref[vl as usize];
                    let len = (offsets_ref[vh as usize] - base) as usize;
                    let (region, tail) = rest.split_at_mut(len);
                    rest = tail;
                    s.spawn(move |_| {
                        let mut cursor: Vec<u32> = offsets_ref[vl as usize..vh as usize]
                            .iter()
                            .map(|&o| o - base)
                            .collect();
                        for j in 0..sets.len() {
                            for &u in sets.partition_slice(j, vl, vh) {
                                let c = &mut cursor[(u - vl) as usize];
                                region[*c as usize] = j as u32;
                                *c += 1;
                            }
                        }
                    });
                }
            });
        }
        Self { offsets, samples }
    }

    /// Sample ids containing `v`, ascending.
    #[inline]
    #[must_use]
    pub fn samples_containing(&self, v: Vertex) -> &[u32] {
        let v = v as usize;
        &self.samples[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Occurrence count of `v` across samples — the initial greedy counter.
    #[inline]
    #[must_use]
    pub fn degree(&self, v: Vertex) -> u64 {
        u64::from(self.offsets[v as usize + 1] - self.offsets[v as usize])
    }

    /// Total associations stored (equals the collection's entry count).
    #[must_use]
    pub fn total_entries(&self) -> usize {
        self.samples.len()
    }

    /// Reserved bytes of the index alone (the collection is borrowed, not
    /// copied — add [`RrrCollection::resident_bytes`] for the full pair).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.offsets.capacity() + self.samples.capacity()) * size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sets() -> RrrCollection {
        let mut c = RrrCollection::new();
        c.push(&[0, 2, 4]);
        c.push(&[2]);
        c.push(&[1, 2, 3]);
        c
    }

    #[test]
    fn inverted_index_contents() {
        let h = HyperGraph::build(sample_sets(), 5);
        assert_eq!(h.samples_containing(2), &[0, 1, 2]);
        assert_eq!(h.samples_containing(0), &[0]);
        assert_eq!(h.samples_containing(4), &[0]);
        assert_eq!(h.samples_containing(1), &[2]);
        assert_eq!(h.degree(2), 3);
        assert_eq!(h.degree(3), 1);
    }

    #[test]
    fn isolated_vertex_has_no_samples() {
        let mut c = RrrCollection::new();
        c.push(&[0]);
        let h = HyperGraph::build(c, 3);
        assert!(h.samples_containing(2).is_empty());
    }

    #[test]
    fn memory_exceeds_one_direction() {
        let sets = sample_sets();
        let one_direction = sets.resident_bytes();
        let h = HyperGraph::build(sets, 5);
        assert!(
            h.resident_bytes() > one_direction,
            "hypergraph must store strictly more than the compact layout"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_vertex() {
        let mut c = RrrCollection::new();
        c.push(&[7]);
        let _ = HyperGraph::build(c, 3);
    }

    #[test]
    fn empty_collection_ok() {
        let h = HyperGraph::build(RrrCollection::new(), 4);
        assert!(h.is_empty());
        assert_eq!(h.degree(0), 0);
    }

    #[test]
    fn sample_index_matches_hypergraph_at_any_partition_count() {
        let sets = sample_sets();
        let h = HyperGraph::build(sets.clone(), 5);
        for p in [1, 2, 3, 5, 16] {
            let idx = SampleIndex::build(&sets, 5, p);
            assert_eq!(idx.total_entries(), sets.total_entries());
            for v in 0..5 {
                assert_eq!(
                    idx.samples_containing(v),
                    h.samples_containing(v),
                    "vertex {v} at p={p}"
                );
                assert_eq!(idx.degree(v), h.degree(v) as u64);
            }
        }
    }

    #[test]
    fn sample_index_rows_are_sorted() {
        let mut c = RrrCollection::new();
        for j in 0..20u32 {
            // Vertex 0 appears in every sample, vertex 1 in every other.
            if j % 2 == 0 {
                c.push(&[0, 1]);
            } else {
                c.push(&[0]);
            }
        }
        let idx = SampleIndex::build(&c, 2, 3);
        let row: Vec<u32> = idx.samples_containing(0).to_vec();
        assert_eq!(row, (0..20).collect::<Vec<u32>>());
        assert!(idx.samples_containing(1).windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sample_index_is_leaner_than_hypergraph_index() {
        let mut c = RrrCollection::new();
        for j in 0..200u32 {
            c.push(&[j % 50, 50 + j % 50, 100 + j % 7]);
        }
        let compact = c.resident_bytes();
        let idx = SampleIndex::build(&c, 107, 4);
        let h = HyperGraph::build(c, 107);
        assert!(
            compact + idx.resident_bytes() < h.resident_bytes(),
            "u32 CSR index ({}) must undercut the two-direction layout ({})",
            compact + idx.resident_bytes(),
            h.resident_bytes()
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sample_index_rejects_out_of_range_vertex_serial() {
        let mut c = RrrCollection::new();
        c.push(&[7]);
        let _ = SampleIndex::build(&c, 3, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sample_index_rejects_out_of_range_vertex_parallel() {
        let mut c = RrrCollection::new();
        c.push(&[7]);
        let _ = SampleIndex::build(&c, 3, 2);
    }

    #[test]
    fn sample_index_empty_collection() {
        let idx = SampleIndex::build(&RrrCollection::new(), 4, 2);
        assert_eq!(idx.total_entries(), 0);
        assert_eq!(idx.degree(0), 0);
        assert!(idx.samples_containing(3).is_empty());
    }
}
