//! The two-direction "hypergraph" sample storage of Tang et al.'s original
//! IMM implementation — the measured baseline of Table 2.
//!
//! *"Previous implementations store this information in two directions using
//! the notion of a hypergraph, where each RRR set (or sample) is a hyperedge
//! consisting of a subset of vertices in the input graph. Information for
//! each vertex about the samples that it participates in is also maintained.
//! Thus, each association between a sample and a vertex is stored twice.
//! While this information aids in faster selection of seed set later, the
//! memory footprint can become a limitation."* (§3.1)
//!
//! This struct materializes exactly that layout: the sample→vertex arena
//! plus the inverted vertex→sample index, so the Table 2 experiment can
//! measure the memory gap and the seed-selection speed trade the paper
//! describes.

use crate::rrr::RrrCollection;
use ripples_graph::Vertex;

/// Two-direction RRR storage: samples by id *and* an inverted index from
/// vertex to the samples containing it.
#[derive(Clone, Debug)]
pub struct HyperGraph {
    sets: RrrCollection,
    /// CSR offsets into `vertex_to_sets`, one slot per vertex.
    index_offsets: Vec<usize>,
    /// Sample ids, grouped by vertex.
    vertex_to_sets: Vec<u32>,
}

impl HyperGraph {
    /// Builds the inverted index over an existing sample collection.
    ///
    /// # Panics
    ///
    /// Panics if a sample references a vertex ≥ `num_vertices` or if there
    /// are ≥ 2³² samples.
    #[must_use]
    pub fn build(sets: RrrCollection, num_vertices: u32) -> Self {
        assert!(
            sets.len() < u32::MAX as usize,
            "too many samples for u32 ids"
        );
        let n = num_vertices as usize;
        let mut counts = vec![0usize; n + 1];
        for set in sets.iter() {
            for &v in set {
                assert!((v as usize) < n, "sample vertex {v} out of range");
                counts[v as usize + 1] += 1;
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let index_offsets = counts;
        let mut cursor = index_offsets.clone();
        let mut vertex_to_sets = vec![0u32; sets.total_entries()];
        for (sid, set) in sets.iter().enumerate() {
            for &v in set {
                let slot = cursor[v as usize];
                vertex_to_sets[slot] = sid as u32;
                cursor[v as usize] += 1;
            }
        }
        Self {
            sets,
            index_offsets,
            vertex_to_sets,
        }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True when no samples are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The sample collection (sample → vertices direction).
    #[must_use]
    pub fn sets(&self) -> &RrrCollection {
        &self.sets
    }

    /// Sample ids containing `v` (vertex → samples direction), ascending.
    #[must_use]
    pub fn samples_containing(&self, v: Vertex) -> &[u32] {
        let v = v as usize;
        &self.vertex_to_sets[self.index_offsets[v]..self.index_offsets[v + 1]]
    }

    /// Occurrence count of `v` across samples — the initial greedy counter.
    #[must_use]
    pub fn degree(&self, v: Vertex) -> usize {
        self.samples_containing(v).len()
    }

    /// Resident bytes of *both* directions — the "IMM" memory columns of
    /// Table 2.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.sets.resident_bytes()
            + self.index_offsets.len() * size_of::<usize>()
            + self.vertex_to_sets.len() * size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sets() -> RrrCollection {
        let mut c = RrrCollection::new();
        c.push(&[0, 2, 4]);
        c.push(&[2]);
        c.push(&[1, 2, 3]);
        c
    }

    #[test]
    fn inverted_index_contents() {
        let h = HyperGraph::build(sample_sets(), 5);
        assert_eq!(h.samples_containing(2), &[0, 1, 2]);
        assert_eq!(h.samples_containing(0), &[0]);
        assert_eq!(h.samples_containing(4), &[0]);
        assert_eq!(h.samples_containing(1), &[2]);
        assert_eq!(h.degree(2), 3);
        assert_eq!(h.degree(3), 1);
    }

    #[test]
    fn isolated_vertex_has_no_samples() {
        let mut c = RrrCollection::new();
        c.push(&[0]);
        let h = HyperGraph::build(c, 3);
        assert!(h.samples_containing(2).is_empty());
    }

    #[test]
    fn memory_exceeds_one_direction() {
        let sets = sample_sets();
        let one_direction = sets.resident_bytes();
        let h = HyperGraph::build(sets, 5);
        assert!(
            h.resident_bytes() > one_direction,
            "hypergraph must store strictly more than the compact layout"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_vertex() {
        let mut c = RrrCollection::new();
        c.push(&[7]);
        let _ = HyperGraph::build(c, 3);
    }

    #[test]
    fn empty_collection_ok() {
        let h = HyperGraph::build(RrrCollection::new(), 4);
        assert!(h.is_empty());
        assert_eq!(h.degree(0), 0);
    }
}
