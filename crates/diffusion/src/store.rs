//! Pluggable RRR-set storage backends behind one [`RrrStore`] trait.
//!
//! The paper's engines hold every sketch flat in RAM
//! ([`RrrCollection`]); HBMax-style byte-level compression (see PAPERS.md)
//! shows the same pipelines run several-fold larger θ when the resident
//! sketches are delta-coded. This module makes the storage layout a
//! first-class choice:
//!
//! * [`RrrCollection`] — the flat reference layout (`--rrr-store flat`).
//!   Selection engines binary-search its slices directly; bitwise baseline
//!   for every other backend.
//! * [`CompressedRrrCollection`] — LEB128 delta-varint blocks
//!   (`--rrr-store varint`), typically 2–4× smaller.
//! * [`BitpackedRrrCollection`] — fixed-width bitpacking at
//!   `⌈log₂ n⌉` bits per id (`--rrr-store bitpack`); wins when ids are
//!   uniform over a small universe where varint's byte granularity wastes
//!   bits.
//! * [`SpillRrrStore`] — varint blocks sealed into chunks, with sealed
//!   chunks beyond a `--rrr-budget` byte cap written to a temp spill file
//!   and streamed back on touch (`--rrr-store spill`), so θ beyond RAM
//!   completes instead of OOMing.
//!
//! All backends fill through the same two paths the flat collection uses —
//! per-sample [`RrrStore::push`] and the [`SampleArena`] merge of the
//! parallel samplers — in the same sample order, so every backend decodes
//! bitwise identical to the flat reference and the cross-engine equality
//! invariants (PR 3/5) extend across storage layouts. The differential
//! oracle's `storage-equivalence` check enforces exactly that.

use crate::compressed::{decode_sample, encode_sample, read_varint, IncrementalSampleIndex};
use crate::rrr::{RrrCollection, SampleArena};
use crate::CompressedRrrCollection;
use ripples_graph::Vertex;
use std::cell::RefCell;
use std::fs::File;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// One storage backend for a collection of sorted RRR sets.
///
/// The contract every backend upholds: samples are identified by their
/// append index, each sample is a sorted, deduplicated vertex list, and a
/// store fed the same samples in the same order as the flat reference
/// decodes the exact same lists — selection over any backend is then
/// bitwise identical given the shared greedy tie-break.
pub trait RrrStore {
    /// Appends one sample, repairing (sort + dedup) and counting violations
    /// of the sorted contract exactly like [`RrrCollection::push`].
    fn push(&mut self, vertices: &[Vertex]);

    /// Appends the samples of `arenas` in arena order — the merge step of
    /// the parallel samplers. Must produce the layout that pushing every
    /// sample in the same order would.
    fn append_arenas(&mut self, arenas: &[SampleArena]);

    /// Number of samples stored.
    fn len(&self) -> usize;

    /// True when no samples are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total vertex entries across all samples.
    fn total_entries(&self) -> u64;

    /// Vertex count of sample `i` without decoding it.
    fn sample_len(&self, i: usize) -> usize;

    /// Decodes sample `i` into `out` (cleared first).
    fn decode_into(&self, i: usize, out: &mut Vec<Vertex>);

    /// Streams the vertices of sample `i` to `f` in ascending order.
    fn for_each_vertex<F: FnMut(Vertex)>(&self, i: usize, f: F);

    /// Membership test on sample `i` (early exit on the sorted order).
    fn contains(&self, i: usize, v: Vertex) -> bool;

    /// Resident bytes of the storage, capacity-based (growth slack is real
    /// allocated memory). Spilled bytes are *not* resident.
    fn resident_bytes(&self) -> usize;

    /// Samples repaired on insert for violating the sorted contract.
    fn unsorted_pushes(&self) -> u64;

    /// The flat reference collection, when this store is one — selection
    /// dispatch uses it to keep the slice-based engines (and their bitwise
    /// guarantees) on the fast path.
    fn as_flat(&self) -> Option<&RrrCollection> {
        None
    }

    /// Total bytes written to a spill file over the store's lifetime
    /// (0 for RAM-only backends).
    fn spill_bytes_written(&self) -> u64 {
        0
    }

    /// Runs `f` over an inverted sample index of the store's current
    /// contents. The default builds a transient
    /// [`IncrementalSampleIndex`] from scratch on every call; stores that
    /// carry an index cache ([`DynRrrStore`] — the type every engine entry
    /// point actually runs) override this to absorb only the samples
    /// appended since the previous call, making the per-round index cost
    /// of IMM's θ-doubling loop proportional to *new* samples instead of
    /// the whole store.
    fn with_sample_index<R>(
        &self,
        num_vertices: u32,
        f: impl FnOnce(&IncrementalSampleIndex) -> R,
    ) -> R
    where
        Self: Sized,
    {
        let mut index = IncrementalSampleIndex::new(num_vertices);
        index.absorb(self);
        f(&index)
    }

    /// The backend's kind tag.
    fn kind(&self) -> RrrStoreKind;
}

/// The available storage backends (`--rrr-store`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RrrStoreKind {
    /// Flat reference layout ([`RrrCollection`]).
    Flat,
    /// Delta-varint blocks ([`CompressedRrrCollection`]).
    Varint,
    /// Fixed-width bitpacking ([`BitpackedRrrCollection`]).
    Bitpack,
    /// Varint chunks with spill-to-disk beyond a byte budget
    /// ([`SpillRrrStore`]).
    Spill,
}

impl RrrStoreKind {
    /// Parses a CLI tag (`--rrr-store flat|varint|bitpack|spill`).
    #[must_use]
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "flat" => Some(Self::Flat),
            "varint" => Some(Self::Varint),
            "bitpack" => Some(Self::Bitpack),
            "spill" => Some(Self::Spill),
            _ => None,
        }
    }

    /// The CLI tag of this kind.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Self::Flat => "flat",
            Self::Varint => "varint",
            Self::Bitpack => "bitpack",
            Self::Spill => "spill",
        }
    }
}

/// How an IMM run should store its RRR sets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StorageConfig {
    /// The backend kind.
    pub kind: RrrStoreKind,
    /// Resident-byte cap for the spill backend (`--rrr-budget`); ignored by
    /// the RAM-only backends. `None` uses [`SpillRrrStore::DEFAULT_BUDGET`].
    pub budget: Option<usize>,
}

impl Default for StorageConfig {
    fn default() -> Self {
        Self {
            kind: RrrStoreKind::Flat,
            budget: None,
        }
    }
}

impl StorageConfig {
    /// Config for one backend kind with no budget override.
    #[must_use]
    pub fn of(kind: RrrStoreKind) -> Self {
        Self { kind, budget: None }
    }
}

impl RrrStore for RrrCollection {
    fn push(&mut self, vertices: &[Vertex]) {
        RrrCollection::push(self, vertices);
    }

    fn append_arenas(&mut self, arenas: &[SampleArena]) {
        RrrCollection::append_arenas(self, arenas);
    }

    fn len(&self) -> usize {
        RrrCollection::len(self)
    }

    fn total_entries(&self) -> u64 {
        RrrCollection::total_entries(self) as u64
    }

    fn sample_len(&self, i: usize) -> usize {
        self.get(i).len()
    }

    fn decode_into(&self, i: usize, out: &mut Vec<Vertex>) {
        out.clear();
        out.extend_from_slice(self.get(i));
    }

    fn for_each_vertex<F: FnMut(Vertex)>(&self, i: usize, mut f: F) {
        for &v in self.get(i) {
            f(v);
        }
    }

    fn contains(&self, i: usize, v: Vertex) -> bool {
        self.get(i).binary_search(&v).is_ok()
    }

    fn resident_bytes(&self) -> usize {
        RrrCollection::resident_bytes(self)
    }

    fn unsorted_pushes(&self) -> u64 {
        RrrCollection::unsorted_pushes(self)
    }

    fn as_flat(&self) -> Option<&RrrCollection> {
        Some(self)
    }

    fn kind(&self) -> RrrStoreKind {
        RrrStoreKind::Flat
    }
}

impl RrrStore for CompressedRrrCollection {
    fn push(&mut self, vertices: &[Vertex]) {
        CompressedRrrCollection::push(self, vertices);
    }

    fn append_arenas(&mut self, arenas: &[SampleArena]) {
        CompressedRrrCollection::append_arenas(self, arenas);
    }

    fn len(&self) -> usize {
        CompressedRrrCollection::len(self)
    }

    fn total_entries(&self) -> u64 {
        CompressedRrrCollection::total_entries(self)
    }

    fn sample_len(&self, i: usize) -> usize {
        CompressedRrrCollection::sample_len(self, i)
    }

    fn decode_into(&self, i: usize, out: &mut Vec<Vertex>) {
        CompressedRrrCollection::decode_into(self, i, out);
    }

    fn for_each_vertex<F: FnMut(Vertex)>(&self, i: usize, f: F) {
        CompressedRrrCollection::for_each_vertex(self, i, f);
    }

    fn contains(&self, i: usize, v: Vertex) -> bool {
        CompressedRrrCollection::contains(self, i, v)
    }

    fn resident_bytes(&self) -> usize {
        CompressedRrrCollection::resident_bytes(self)
    }

    fn unsorted_pushes(&self) -> u64 {
        CompressedRrrCollection::unsorted_pushes(self)
    }

    fn kind(&self) -> RrrStoreKind {
        RrrStoreKind::Varint
    }
}

/// Fixed-width bitpacked RRR storage: every vertex id occupies exactly
/// `⌈log₂ n⌉` bits. Compared to varint's byte granularity this wins on
/// small universes with near-uniform ids (where most gaps still need a
/// whole byte) and loses on skewed, clustered sets (where gap-1 deltas fit
/// a few bits' worth of byte). Random access per sample stays O(1) to the
/// sample start; decoding is a linear bit-read.
#[derive(Clone, Debug)]
pub struct BitpackedRrrCollection {
    /// Bits per stored id; `1..=32`.
    width: u32,
    /// Per-sample end offsets in *ids* (`offsets[0] == 0`).
    offsets: Vec<u64>,
    /// The packed bit buffer.
    words: Vec<u64>,
    unsorted_pushes: u64,
}

impl BitpackedRrrCollection {
    /// Creates an empty collection for vertex ids `< num_vertices`.
    #[must_use]
    pub fn new(num_vertices: u32) -> Self {
        let width = match num_vertices {
            0 | 1 => 1,
            n => 32 - (n - 1).leading_zeros(),
        };
        Self {
            width,
            offsets: vec![0],
            words: Vec::new(),
            unsorted_pushes: 0,
        }
    }

    /// Bits per stored vertex id.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    #[inline]
    fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    #[inline]
    fn write_id(&mut self, slot: u64, v: u32) {
        let bit = slot * u64::from(self.width);
        let word = (bit / 64) as usize;
        let shift = bit % 64;
        let need_words = (bit + u64::from(self.width)).div_ceil(64) as usize;
        if self.words.len() < need_words {
            self.words.resize(need_words, 0);
        }
        self.words[word] |= u64::from(v) << shift;
        if shift + u64::from(self.width) > 64 {
            self.words[word + 1] |= u64::from(v) >> (64 - shift);
        }
    }

    #[inline]
    fn read_id(&self, slot: u64) -> u32 {
        let bit = slot * u64::from(self.width);
        let word = (bit / 64) as usize;
        let shift = bit % 64;
        let mut v = self.words[word] >> shift;
        if shift + u64::from(self.width) > 64 {
            v |= self.words[word + 1] << (64 - shift);
        }
        (v & self.mask()) as u32
    }

    fn push_sorted(&mut self, vertices: &[Vertex]) {
        let start = *self.offsets.last().expect("offsets never empty");
        for (i, &v) in vertices.iter().enumerate() {
            debug_assert!(
                u64::from(v) <= self.mask(),
                "vertex {v} exceeds the {}-bit universe",
                self.width
            );
            self.write_id(start + i as u64, v);
        }
        self.offsets.push(start + vertices.len() as u64);
    }

    /// Appends a sample under the always-on sorted/repair contract.
    pub fn push(&mut self, vertices: &[Vertex]) {
        if vertices.windows(2).all(|w| w[0] < w[1]) {
            self.push_sorted(vertices);
        } else {
            self.unsorted_pushes += 1;
            let mut repaired = vertices.to_vec();
            repaired.sort_unstable();
            repaired.dedup();
            self.push_sorted(&repaired);
        }
    }

    /// Number of samples stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Vertex count of sample `i`.
    #[must_use]
    pub fn sample_len(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }
}

impl RrrStore for BitpackedRrrCollection {
    fn push(&mut self, vertices: &[Vertex]) {
        BitpackedRrrCollection::push(self, vertices);
    }

    fn append_arenas(&mut self, arenas: &[SampleArena]) {
        let new_samples: usize = arenas.iter().map(SampleArena::len).sum();
        let new_entries: usize = arenas.iter().map(SampleArena::total_entries).sum();
        // `reserve_exact`: these sizes are exact, and `resident_bytes`
        // reports capacity — amortized doubling would inflate the peak.
        self.offsets.reserve_exact(new_samples);
        let end_ids = *self.offsets.last().expect("offsets never empty") + new_entries as u64;
        self.words.reserve_exact(
            (end_ids * u64::from(self.width)).div_ceil(64) as usize - self.words.len(),
        );
        for arena in arenas {
            for i in 0..arena.len() {
                // Arena content is validated sorted by append_with.
                self.push_sorted(arena.get(i));
            }
            self.unsorted_pushes += arena.unsorted_repairs();
        }
    }

    fn len(&self) -> usize {
        BitpackedRrrCollection::len(self)
    }

    fn total_entries(&self) -> u64 {
        *self.offsets.last().expect("offsets never empty")
    }

    fn sample_len(&self, i: usize) -> usize {
        BitpackedRrrCollection::sample_len(self, i)
    }

    fn decode_into(&self, i: usize, out: &mut Vec<Vertex>) {
        out.clear();
        for slot in self.offsets[i]..self.offsets[i + 1] {
            out.push(self.read_id(slot));
        }
    }

    fn for_each_vertex<F: FnMut(Vertex)>(&self, i: usize, mut f: F) {
        for slot in self.offsets[i]..self.offsets[i + 1] {
            f(self.read_id(slot));
        }
    }

    fn contains(&self, i: usize, v: Vertex) -> bool {
        // Ids are sorted, so binary search over the fixed-width slots.
        let (mut lo, mut hi) = (self.offsets[i], self.offsets[i + 1]);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.read_id(mid).cmp(&v) {
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        false
    }

    fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.offsets.capacity() * size_of::<u64>() + self.words.capacity() * size_of::<u64>()
    }

    fn unsorted_pushes(&self) -> u64 {
        self.unsorted_pushes
    }

    fn kind(&self) -> RrrStoreKind {
        RrrStoreKind::Bitpack
    }
}

/// Monotonic suffix for spill-file names, so concurrent stores in one
/// process never collide.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Where a sealed chunk's encoded payload lives.
#[derive(Debug)]
enum ChunkPayload {
    /// Still resident.
    Ram(Vec<u8>),
    /// Written to the spill file at `offset`, `len` bytes.
    Disk { offset: u64, len: usize },
}

/// One sealed run of consecutive samples, varint-encoded.
#[derive(Debug)]
struct Chunk {
    /// Global index of the chunk's first sample.
    first_sample: usize,
    /// Per-sample vertex counts.
    counts: Vec<u32>,
    /// Per-sample end byte offsets within the payload.
    ends: Vec<u32>,
    payload: ChunkPayload,
}

impl Chunk {
    fn samples(&self) -> usize {
        self.counts.len()
    }
}

/// Chunked spill-to-disk RRR storage: delta-varint blocks sealed into
/// chunks; once resident bytes exceed the budget, sealed chunk payloads are
/// appended to a temp spill file and read back on touch through a one-chunk
/// cache. Per-sample counts and offsets stay resident (8 bytes per sample),
/// so `sample_len`/`len` never touch the disk and access within a loaded
/// chunk is O(1).
///
/// The access patterns of selection — a sequential counting sweep, then
/// per-seed touches in ascending sample order — load each spilled chunk a
/// bounded number of times per pass, so a budget-bound run completes with
/// streaming reads instead of OOMing.
#[derive(Debug)]
pub struct SpillRrrStore {
    budget: usize,
    /// Seal the open chunk when its payload reaches this many bytes.
    chunk_target: usize,
    chunks: Vec<Chunk>,
    /// The open chunk's state (same layout as a sealed RAM chunk).
    open_first: usize,
    open_counts: Vec<u32>,
    open_ends: Vec<u32>,
    open_data: Vec<u8>,
    file: Option<File>,
    path: PathBuf,
    file_len: u64,
    spill_bytes_written: u64,
    total_entries: u64,
    unsorted_pushes: u64,
    /// `(chunk index, payload)` of the most recently loaded spilled chunk.
    cache: RefCell<Option<(usize, Vec<u8>)>>,
}

impl SpillRrrStore {
    /// Default resident budget when none is configured: 1 GiB.
    pub const DEFAULT_BUDGET: usize = 1 << 30;

    /// Creates a store with the given resident-byte budget.
    #[must_use]
    pub fn new(budget: usize) -> Self {
        // Small budgets must still seal (and therefore spill) promptly; big
        // budgets want fewer, larger chunks for sequential I/O.
        let chunk_target = (budget / 4).clamp(1 << 10, 8 << 20);
        let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("ripples-spill-{}-{seq}.rrr", std::process::id()));
        Self {
            budget,
            chunk_target,
            chunks: Vec::new(),
            open_first: 0,
            open_counts: Vec::new(),
            open_ends: Vec::new(),
            open_data: Vec::new(),
            file: None,
            path,
            file_len: 0,
            spill_bytes_written: 0,
            total_entries: 0,
            unsorted_pushes: 0,
            cache: RefCell::new(None),
        }
    }

    /// The configured resident budget in bytes.
    #[must_use]
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Number of chunks currently on disk.
    #[must_use]
    pub fn spilled_chunks(&self) -> usize {
        self.chunks
            .iter()
            .filter(|c| matches!(c.payload, ChunkPayload::Disk { .. }))
            .count()
    }

    fn push_sorted(&mut self, vertices: &[Vertex]) {
        encode_sample(&mut self.open_data, vertices);
        self.open_counts.push(vertices.len() as u32);
        self.open_ends.push(self.open_data.len() as u32);
        self.total_entries += vertices.len() as u64;
        if self.open_data.len() >= self.chunk_target {
            self.seal_open();
        }
        self.enforce_budget();
    }

    fn seal_open(&mut self) {
        if self.open_counts.is_empty() {
            return;
        }
        let samples = self.open_counts.len();
        self.chunks.push(Chunk {
            first_sample: self.open_first,
            counts: std::mem::take(&mut self.open_counts),
            ends: std::mem::take(&mut self.open_ends),
            payload: ChunkPayload::Ram(std::mem::take(&mut self.open_data)),
        });
        self.open_first += samples;
    }

    fn enforce_budget(&mut self) {
        if RrrStore::resident_bytes(self) <= self.budget {
            return;
        }
        // Oldest sealed RAM chunks spill first: selection touches samples
        // in ascending order, so the freshest (still-filling) tail stays
        // hot while the cold head streams from disk.
        for idx in 0..self.chunks.len() {
            if RrrStore::resident_bytes(self) <= self.budget {
                break;
            }
            if !matches!(self.chunks[idx].payload, ChunkPayload::Ram(_)) {
                continue;
            }
            let ChunkPayload::Ram(bytes) = std::mem::replace(
                &mut self.chunks[idx].payload,
                ChunkPayload::Disk { offset: 0, len: 0 },
            ) else {
                unreachable!()
            };
            let offset = self.file_len;
            let file = self.file.get_or_insert_with(|| {
                std::fs::OpenOptions::new()
                    .create(true)
                    .truncate(true)
                    .read(true)
                    .write(true)
                    .open(&self.path)
                    .unwrap_or_else(|e| panic!("cannot create spill file {:?}: {e}", self.path))
            });
            file.seek(SeekFrom::Start(offset))
                .and_then(|_| file.write_all(&bytes))
                .unwrap_or_else(|e| panic!("cannot write spill file {:?}: {e}", self.path));
            self.file_len += bytes.len() as u64;
            self.spill_bytes_written += bytes.len() as u64;
            self.chunks[idx].payload = ChunkPayload::Disk {
                offset,
                len: bytes.len(),
            };
        }
    }

    /// Index of the chunk holding global sample `i`, or `None` when `i`
    /// lives in the open chunk.
    fn chunk_of(&self, i: usize) -> Option<usize> {
        if i >= self.open_first {
            return None;
        }
        let idx = self
            .chunks
            .partition_point(|c| c.first_sample + c.samples() <= i);
        debug_assert!(idx < self.chunks.len());
        Some(idx)
    }

    /// Runs `f` over the payload byte range of sample `i`, loading the
    /// owning chunk from disk (into the one-chunk cache) when spilled.
    fn with_sample_bytes<T>(&self, i: usize, f: impl FnOnce(&[u8], u32) -> T) -> T {
        match self.chunk_of(i) {
            None => {
                let j = i - self.open_first;
                let start = if j == 0 {
                    0
                } else {
                    self.open_ends[j - 1] as usize
                };
                let end = self.open_ends[j] as usize;
                f(&self.open_data[start..end], self.open_counts[j])
            }
            Some(idx) => {
                let chunk = &self.chunks[idx];
                let j = i - chunk.first_sample;
                let start = if j == 0 {
                    0
                } else {
                    chunk.ends[j - 1] as usize
                };
                let end = chunk.ends[j] as usize;
                match &chunk.payload {
                    ChunkPayload::Ram(bytes) => f(&bytes[start..end], chunk.counts[j]),
                    ChunkPayload::Disk { offset, len } => {
                        let mut cache = self.cache.borrow_mut();
                        let hit = matches!(&*cache, Some((c, _)) if *c == idx);
                        if !hit {
                            let mut bytes = vec![0u8; *len];
                            let mut file =
                                self.file.as_ref().expect("spilled chunk without a file");
                            file.seek(SeekFrom::Start(*offset))
                                .and_then(|_| file.read_exact(&mut bytes))
                                .unwrap_or_else(|e| {
                                    panic!("cannot read spill file {:?}: {e}", self.path)
                                });
                            *cache = Some((idx, bytes));
                        }
                        let (_, bytes) = cache.as_ref().expect("cache just filled");
                        f(&bytes[start..end], chunk.counts[j])
                    }
                }
            }
        }
    }
}

impl Drop for SpillRrrStore {
    fn drop(&mut self) {
        if self.file.take().is_some() {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

impl RrrStore for SpillRrrStore {
    fn push(&mut self, vertices: &[Vertex]) {
        if vertices.windows(2).all(|w| w[0] < w[1]) {
            self.push_sorted(vertices);
        } else {
            self.unsorted_pushes += 1;
            let mut repaired = vertices.to_vec();
            repaired.sort_unstable();
            repaired.dedup();
            self.push_sorted(&repaired);
        }
    }

    fn append_arenas(&mut self, arenas: &[SampleArena]) {
        for arena in arenas {
            for i in 0..arena.len() {
                self.push_sorted(arena.get(i));
            }
            self.unsorted_pushes += arena.unsorted_repairs();
        }
    }

    fn len(&self) -> usize {
        self.open_first + self.open_counts.len()
    }

    fn total_entries(&self) -> u64 {
        self.total_entries
    }

    fn sample_len(&self, i: usize) -> usize {
        match self.chunk_of(i) {
            None => self.open_counts[i - self.open_first] as usize,
            Some(idx) => {
                let chunk = &self.chunks[idx];
                chunk.counts[i - chunk.first_sample] as usize
            }
        }
    }

    fn decode_into(&self, i: usize, out: &mut Vec<Vertex>) {
        out.clear();
        self.with_sample_bytes(i, |bytes, count| {
            let mut pos = 0usize;
            decode_sample(bytes, &mut pos, count, |v| out.push(v));
            debug_assert_eq!(pos, bytes.len());
        });
    }

    fn for_each_vertex<F: FnMut(Vertex)>(&self, i: usize, f: F) {
        self.with_sample_bytes(i, |bytes, count| {
            let mut pos = 0usize;
            decode_sample(bytes, &mut pos, count, f);
        });
    }

    fn contains(&self, i: usize, target: Vertex) -> bool {
        self.with_sample_bytes(i, |bytes, count| {
            let mut pos = 0usize;
            let mut prev: Vertex = 0;
            for idx in 0..count {
                let raw = read_varint(bytes, &mut pos);
                let v = if idx == 0 { raw } else { prev + raw + 1 };
                if v == target {
                    return true;
                }
                if v > target {
                    return false;
                }
                prev = v;
            }
            false
        })
    }

    fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        let meta: usize = self
            .chunks
            .iter()
            .map(|c| {
                c.counts.capacity() * size_of::<u32>()
                    + c.ends.capacity() * size_of::<u32>()
                    + match &c.payload {
                        ChunkPayload::Ram(bytes) => bytes.capacity(),
                        ChunkPayload::Disk { .. } => 0,
                    }
            })
            .sum();
        let cache = self
            .cache
            .borrow()
            .as_ref()
            .map_or(0, |(_, bytes)| bytes.capacity());
        meta + self.open_counts.capacity() * size_of::<u32>()
            + self.open_ends.capacity() * size_of::<u32>()
            + self.open_data.capacity()
            + cache
    }

    fn unsorted_pushes(&self) -> u64 {
        self.unsorted_pushes
    }

    fn spill_bytes_written(&self) -> u64 {
        self.spill_bytes_written
    }

    fn kind(&self) -> RrrStoreKind {
        RrrStoreKind::Spill
    }
}

/// The concrete layout behind a [`DynRrrStore`].
#[derive(Debug)]
enum DynStoreInner {
    /// Flat reference layout.
    Flat(RrrCollection),
    /// Delta-varint blocks.
    Varint(CompressedRrrCollection),
    /// Fixed-width bitpacking.
    Bitpack(BitpackedRrrCollection),
    /// Varint chunks with spill-to-disk.
    Spill(SpillRrrStore),
}

/// A runtime-chosen storage backend (`--rrr-store`), dispatching the
/// [`RrrStore`] trait over the four concrete layouts.
///
/// Carries the cross-round [`IncrementalSampleIndex`] cache behind
/// [`RrrStore::with_sample_index`]: IMM selects over the same (append-only)
/// store every θ round, so the cache turns per-round index rebuilds into
/// incremental absorbs of just the new samples. The cache is excluded from
/// [`RrrStore::resident_bytes`] — it is selection working memory, reported
/// through `SelectStats::index_bytes` exactly like the flat engines'
/// transient indexes.
#[derive(Debug)]
pub struct DynRrrStore {
    inner: DynStoreInner,
    index_cache: RefCell<Option<IncrementalSampleIndex>>,
}

impl DynRrrStore {
    /// Creates an empty store per `config` for a graph of `num_vertices`.
    #[must_use]
    pub fn new(config: StorageConfig, num_vertices: u32) -> Self {
        let inner = match config.kind {
            RrrStoreKind::Flat => DynStoreInner::Flat(RrrCollection::new()),
            RrrStoreKind::Varint => DynStoreInner::Varint(CompressedRrrCollection::new()),
            RrrStoreKind::Bitpack => {
                DynStoreInner::Bitpack(BitpackedRrrCollection::new(num_vertices))
            }
            RrrStoreKind::Spill => DynStoreInner::Spill(SpillRrrStore::new(
                config.budget.unwrap_or(SpillRrrStore::DEFAULT_BUDGET),
            )),
        };
        Self {
            inner,
            index_cache: RefCell::new(None),
        }
    }

    /// Wraps a restored flat collection (snapshot-restore path): the store
    /// behaves exactly as if the collection had been filled in place, flat
    /// fast paths included.
    #[must_use]
    pub fn from_flat(collection: RrrCollection) -> Self {
        Self {
            inner: DynStoreInner::Flat(collection),
            index_cache: RefCell::new(None),
        }
    }

    /// Wraps a restored varint collection (snapshot-restore path).
    #[must_use]
    pub fn from_varint(collection: CompressedRrrCollection) -> Self {
        Self {
            inner: DynStoreInner::Varint(collection),
            index_cache: RefCell::new(None),
        }
    }

    /// Borrows the underlying varint collection, if that is the layout
    /// (snapshot-serialize path, the mirror of [`Self::from_varint`]).
    #[must_use]
    pub fn as_varint(&self) -> Option<&CompressedRrrCollection> {
        match &self.inner {
            DynStoreInner::Varint(c) => Some(c),
            _ => None,
        }
    }
}

macro_rules! dyn_delegate {
    ($self:expr, $store:ident => $body:expr) => {
        match $self {
            DynStoreInner::Flat($store) => $body,
            DynStoreInner::Varint($store) => $body,
            DynStoreInner::Bitpack($store) => $body,
            DynStoreInner::Spill($store) => $body,
        }
    };
}

impl RrrStore for DynStoreInner {
    fn push(&mut self, vertices: &[Vertex]) {
        dyn_delegate!(self, s => RrrStore::push(s, vertices));
    }

    fn append_arenas(&mut self, arenas: &[SampleArena]) {
        dyn_delegate!(self, s => RrrStore::append_arenas(s, arenas));
    }

    fn len(&self) -> usize {
        dyn_delegate!(self, s => RrrStore::len(s))
    }

    fn total_entries(&self) -> u64 {
        dyn_delegate!(self, s => RrrStore::total_entries(s))
    }

    fn sample_len(&self, i: usize) -> usize {
        dyn_delegate!(self, s => RrrStore::sample_len(s, i))
    }

    fn decode_into(&self, i: usize, out: &mut Vec<Vertex>) {
        dyn_delegate!(self, s => RrrStore::decode_into(s, i, out));
    }

    fn for_each_vertex<F: FnMut(Vertex)>(&self, i: usize, f: F) {
        dyn_delegate!(self, s => RrrStore::for_each_vertex(s, i, f));
    }

    fn contains(&self, i: usize, v: Vertex) -> bool {
        dyn_delegate!(self, s => RrrStore::contains(s, i, v))
    }

    fn resident_bytes(&self) -> usize {
        dyn_delegate!(self, s => RrrStore::resident_bytes(s))
    }

    fn unsorted_pushes(&self) -> u64 {
        dyn_delegate!(self, s => RrrStore::unsorted_pushes(s))
    }

    fn as_flat(&self) -> Option<&RrrCollection> {
        match self {
            DynStoreInner::Flat(c) => Some(c),
            _ => None,
        }
    }

    fn spill_bytes_written(&self) -> u64 {
        dyn_delegate!(self, s => RrrStore::spill_bytes_written(s))
    }

    fn kind(&self) -> RrrStoreKind {
        dyn_delegate!(self, s => RrrStore::kind(s))
    }
}

impl RrrStore for DynRrrStore {
    fn push(&mut self, vertices: &[Vertex]) {
        self.inner.push(vertices);
    }

    fn append_arenas(&mut self, arenas: &[SampleArena]) {
        self.inner.append_arenas(arenas);
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn total_entries(&self) -> u64 {
        self.inner.total_entries()
    }

    fn sample_len(&self, i: usize) -> usize {
        self.inner.sample_len(i)
    }

    fn decode_into(&self, i: usize, out: &mut Vec<Vertex>) {
        self.inner.decode_into(i, out);
    }

    fn for_each_vertex<F: FnMut(Vertex)>(&self, i: usize, f: F) {
        self.inner.for_each_vertex(i, f);
    }

    fn contains(&self, i: usize, v: Vertex) -> bool {
        self.inner.contains(i, v)
    }

    fn resident_bytes(&self) -> usize {
        self.inner.resident_bytes()
    }

    fn unsorted_pushes(&self) -> u64 {
        self.inner.unsorted_pushes()
    }

    fn as_flat(&self) -> Option<&RrrCollection> {
        self.inner.as_flat()
    }

    fn spill_bytes_written(&self) -> u64 {
        self.inner.spill_bytes_written()
    }

    fn with_sample_index<R>(
        &self,
        num_vertices: u32,
        f: impl FnOnce(&IncrementalSampleIndex) -> R,
    ) -> R {
        let mut cache = self.index_cache.borrow_mut();
        let index = cache.get_or_insert_with(|| IncrementalSampleIndex::new(num_vertices));
        debug_assert_eq!(
            index.num_vertices(),
            num_vertices as usize,
            "index cache reused across different vertex universes"
        );
        index.absorb(&self.inner);
        f(index)
    }

    fn kind(&self) -> RrrStoreKind {
        self.inner.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random sorted sample list over `n` vertices.
    fn synth_samples(n: u32, count: usize) -> Vec<Vec<Vertex>> {
        let mut x = 0x9E3779B9u32;
        (0..count)
            .map(|i| {
                let len = i % 7;
                let mut s: Vec<Vertex> = (0..len)
                    .map(|_| {
                        x = x.wrapping_mul(1103515245).wrapping_add(12345);
                        (x >> 8) % n
                    })
                    .collect();
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect()
    }

    fn all_backends(n: u32, budget: usize) -> Vec<DynRrrStore> {
        vec![
            DynRrrStore::new(StorageConfig::of(RrrStoreKind::Flat), n),
            DynRrrStore::new(StorageConfig::of(RrrStoreKind::Varint), n),
            DynRrrStore::new(StorageConfig::of(RrrStoreKind::Bitpack), n),
            DynRrrStore::new(
                StorageConfig {
                    kind: RrrStoreKind::Spill,
                    budget: Some(budget),
                },
                n,
            ),
        ]
    }

    #[test]
    fn every_backend_round_trips_identically() {
        let n = 500;
        let samples = synth_samples(n, 300);
        for mut store in all_backends(n, 2048) {
            for s in &samples {
                store.push(s);
            }
            assert_eq!(store.len(), samples.len(), "{:?}", store.kind());
            let total: u64 = samples.iter().map(|s| s.len() as u64).sum();
            assert_eq!(store.total_entries(), total, "{:?}", store.kind());
            let mut out = Vec::new();
            for (i, s) in samples.iter().enumerate() {
                assert_eq!(store.sample_len(i), s.len(), "{:?}", store.kind());
                store.decode_into(i, &mut out);
                assert_eq!(&out, s, "{:?} sample {i}", store.kind());
                let mut streamed = Vec::new();
                store.for_each_vertex(i, |v| streamed.push(v));
                assert_eq!(&streamed, s, "{:?} sample {i}", store.kind());
                for v in [0, n / 2, n - 1] {
                    assert_eq!(
                        store.contains(i, v),
                        s.binary_search(&v).is_ok(),
                        "{:?} sample {i} vertex {v}",
                        store.kind()
                    );
                }
            }
            assert!(store.resident_bytes() > 0);
            assert_eq!(store.unsorted_pushes(), 0);
        }
    }

    #[test]
    fn every_backend_repairs_unsorted_pushes() {
        for mut store in all_backends(100, 4096) {
            store.push(&[9, 3, 3, 7]);
            assert_eq!(store.unsorted_pushes(), 1, "{:?}", store.kind());
            let mut out = Vec::new();
            store.decode_into(0, &mut out);
            assert_eq!(out, vec![3, 7, 9], "{:?}", store.kind());
        }
    }

    #[test]
    fn arena_fill_matches_push_fill() {
        let n = 200;
        let samples = synth_samples(n, 64);
        let mut arenas = vec![SampleArena::default(), SampleArena::default()];
        for (i, s) in samples.iter().enumerate() {
            arenas[i / 32].append_with(|buf| {
                buf.extend_from_slice(s);
                0
            });
        }
        for (mut via_arena, mut via_push) in
            all_backends(n, 4096).into_iter().zip(all_backends(n, 4096))
        {
            via_arena.append_arenas(&arenas);
            for s in &samples {
                via_push.push(s);
            }
            let mut a = Vec::new();
            let mut b = Vec::new();
            for i in 0..samples.len() {
                via_arena.decode_into(i, &mut a);
                via_push.decode_into(i, &mut b);
                assert_eq!(a, b, "{:?} sample {i}", via_arena.kind());
            }
        }
    }

    #[test]
    fn compressed_backends_shrink_storage() {
        // Clustered sorted ids: the flat layout pays 4 bytes per entry,
        // varint gaps mostly 1 byte, bitpack ⌈log2 n⌉ bits.
        let n = 1 << 14;
        let mut flat = RrrCollection::new();
        let mut varint = CompressedRrrCollection::new();
        let mut bitpack = BitpackedRrrCollection::new(n);
        for base in 0..400u32 {
            let set: Vec<Vertex> = (0..48).map(|i| (base * 7 + i * 3) % n).collect();
            let mut set = set;
            set.sort_unstable();
            set.dedup();
            RrrStore::push(&mut flat, &set);
            RrrStore::push(&mut varint, &set);
            RrrStore::push(&mut bitpack, &set);
        }
        let f = RrrStore::resident_bytes(&flat);
        assert!(
            RrrStore::resident_bytes(&varint) * 2 < f,
            "varint {} not ≪ flat {f}",
            RrrStore::resident_bytes(&varint)
        );
        assert!(
            RrrStore::resident_bytes(&bitpack) < f,
            "bitpack {} not < flat {f}",
            RrrStore::resident_bytes(&bitpack)
        );
    }

    #[test]
    fn bitpack_handles_full_u32_universe() {
        let mut c = BitpackedRrrCollection::new(u32::MAX);
        assert_eq!(c.width(), 32);
        let s = vec![0u32, 1, u32::MAX - 2, u32::MAX - 1];
        RrrStore::push(&mut c, &s);
        let mut out = Vec::new();
        RrrStore::decode_into(&c, 0, &mut out);
        assert_eq!(out, s);
        assert!(RrrStore::contains(&c, 0, u32::MAX - 1));
        assert!(!RrrStore::contains(&c, 0, 17));
    }

    #[test]
    fn bitpack_tiny_universe() {
        let mut c = BitpackedRrrCollection::new(2);
        assert_eq!(c.width(), 1);
        RrrStore::push(&mut c, &[0, 1]);
        RrrStore::push(&mut c, &[1]);
        RrrStore::push(&mut c, &[]);
        let mut out = Vec::new();
        RrrStore::decode_into(&c, 0, &mut out);
        assert_eq!(out, vec![0, 1]);
        RrrStore::decode_into(&c, 2, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn spill_store_spills_and_reads_back() {
        let n = 1000;
        let samples = synth_samples(n, 2000);
        let mut store = SpillRrrStore::new(4096);
        for s in &samples {
            RrrStore::push(&mut store, s);
        }
        assert!(
            store.spill_bytes_written() > 0,
            "a 4 KiB budget over 2000 samples must spill"
        );
        assert!(store.spilled_chunks() > 0);
        // Random-order reads (worst case for the one-chunk cache) still
        // decode exactly.
        let mut out = Vec::new();
        for &i in &[1999usize, 0, 1000, 3, 1998, 500, 7] {
            RrrStore::decode_into(&store, i, &mut out);
            assert_eq!(&out, &samples[i], "sample {i}");
        }
        // Sequential sweep.
        for (i, s) in samples.iter().enumerate() {
            RrrStore::decode_into(&store, i, &mut out);
            assert_eq!(&out, s, "sample {i}");
            assert_eq!(RrrStore::sample_len(&store, i), s.len());
        }
        let path = store.path.clone();
        assert!(path.exists(), "spill file must exist while the store lives");
        drop(store);
        assert!(!path.exists(), "spill file must be removed on drop");
    }

    #[test]
    fn spill_store_without_pressure_stays_in_ram() {
        let samples = synth_samples(100, 50);
        let mut store = SpillRrrStore::new(SpillRrrStore::DEFAULT_BUDGET);
        for s in &samples {
            RrrStore::push(&mut store, s);
        }
        assert_eq!(store.spill_bytes_written(), 0);
        assert!(!store.path.exists());
        let mut out = Vec::new();
        for (i, s) in samples.iter().enumerate() {
            RrrStore::decode_into(&store, i, &mut out);
            assert_eq!(&out, s);
        }
    }

    #[test]
    fn spill_resident_bytes_stay_near_budget() {
        let n = 1000;
        let samples = synth_samples(n, 4000);
        let budget = 16 << 10;
        let mut store = SpillRrrStore::new(budget);
        let mut flat = RrrCollection::new();
        for s in &samples {
            RrrStore::push(&mut store, s);
            flat.push(s);
        }
        // Resident footprint must land well below the flat layout: the
        // payload respects the budget and only the per-sample metadata
        // (8 bytes/sample) grows with θ.
        let meta = samples.len() * 8;
        assert!(
            RrrStore::resident_bytes(&store) < budget + 2 * meta + store.chunk_target,
            "resident {} exceeds budget {budget} + metadata {meta}",
            RrrStore::resident_bytes(&store)
        );
        assert!(RrrStore::resident_bytes(&store) < flat.resident_bytes());
    }

    #[test]
    fn store_kind_tags_round_trip() {
        for kind in [
            RrrStoreKind::Flat,
            RrrStoreKind::Varint,
            RrrStoreKind::Bitpack,
            RrrStoreKind::Spill,
        ] {
            assert_eq!(RrrStoreKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(RrrStoreKind::from_tag("nope"), None);
        let store = DynRrrStore::new(StorageConfig::default(), 10);
        assert_eq!(store.kind(), RrrStoreKind::Flat);
        assert!(store.as_flat().is_some());
    }
}
