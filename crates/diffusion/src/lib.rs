//! Diffusion kernels for influence maximization.
//!
//! Two families of kernels, matching §3 of the CLUSTER'19 paper:
//!
//! * **Forward simulation** ([`forward`]): the probabilistic BFS that plays
//!   a cascade out of a seed set under the Independent Cascade (IC) or
//!   Linear Threshold (LT) model, plus the Monte-Carlo spread estimator used
//!   to score seed sets (Figure 1's y-axis) and by the Kempe/CELF baseline.
//! * **Reverse-reachability sampling** ([`rrr`], [`sampler`]): Algorithm 3's
//!   `GenerateRR` — a probabilistic BFS over *incoming* edges from a random
//!   root, evaluated lazily so the sampled subgraph `g` is never
//!   materialized, returning the visited vertices **sorted by id** (the
//!   paper's §3.1 layout decision that enables binary-searched partition
//!   scans during seed selection).
//!
//! Storage of the sample collection comes in the two layouts Table 2
//! compares: the compact one-direction [`rrr::RrrCollection`] (the paper's
//! IMMOPT) and the two-direction inverted-index [`hypergraph::HyperGraph`]
//! (Tang et al.'s original layout, kept as the measured baseline).

#![warn(missing_docs)]

pub mod compressed;
pub mod forward;
pub mod fused;
pub mod hypergraph;
pub mod model;
pub mod partitioned;
pub mod rrr;
pub mod sampler;
pub mod sketches;
pub mod store;

pub use compressed::{CompressedRrrCollection, CompressedSampleIndex, IncrementalSampleIndex};
pub use forward::{estimate_spread, simulate_cascade, spread_samples, CascadeOutcome};
pub use fused::{sample_batch_fused, FUSED_LANES};
pub use hypergraph::{HyperGraph, SampleIndex};
pub use model::DiffusionModel;
pub use partitioned::GraphPartition;
pub use rrr::{generate_rrr, generate_rrr_into, RrrCollection, RrrScratch, SampleArena};
pub use sampler::{
    ensure_lt_normalized, sample_batch, sample_batch_sequential, sample_root_of, BatchOutcome,
};
pub use sketches::ReachabilitySketches;
pub use store::{
    BitpackedRrrCollection, DynRrrStore, RrrStore, RrrStoreKind, SpillRrrStore, StorageConfig,
};
