//! Graph-partitioned RRR sampling — the paper's future-work item (i):
//! *"extension to settings where the input graph is also partitioned (in
//! addition to R)"*.
//!
//! The published system replicates the whole graph on every rank, capping
//! input size at single-node memory. Here the vertex space is split into
//! `p` intervals and each rank stores **only the in-edges of its owned
//! vertices** (~`m/p` edges). One RRR set then no longer lives on one rank:
//! its reverse BFS hops across owners, driven by a bulk-synchronous
//! frontier exchange.
//!
//! **Randomness keying.** Replicated sampling draws a sample's coin flips
//! from a per-sample stream in traversal order, which is meaningless when
//! the traversal is distributed. Instead, the coin flips consumed while
//! expanding vertex `v` of sample `s` come from a stream keyed by `(s, v)`
//! ([`vertex_keyed_rrr`] is the sequential reference). Expansion of `(s,v)`
//! happens exactly once — at `v`'s owner — so a partitioned run over any
//! rank count reproduces the reference **bitwise** (tested in
//! `ripples-core`).

use crate::model::DiffusionModel;
use crate::rrr::{RrrCollection, RrrScratch};
use ripples_graph::partition::ChunkView;
use ripples_graph::{Graph, Vertex};
use ripples_rng::{SplitMix64, StreamFactory};

/// The in-edges owned by one rank: vertex interval `[vl, vh)` of the parent
/// graph, with full-id sources.
#[derive(Clone, Debug)]
pub struct GraphPartition {
    /// Total vertex count of the parent graph.
    pub num_vertices: u32,
    /// First owned vertex.
    pub vl: Vertex,
    /// One past the last owned vertex.
    pub vh: Vertex,
    in_offsets: Vec<usize>,
    in_sources: Vec<Vertex>,
    in_probs: Vec<f32>,
}

impl GraphPartition {
    /// Extracts rank `rank` of `size`'s partition from a full graph.
    ///
    /// In a real deployment each rank would *load* only its slice; this
    /// constructor exists because the experiments hold the full graph
    /// anyway.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0` or `rank >= size`.
    #[must_use]
    pub fn extract(graph: &Graph, rank: u32, size: u32) -> Self {
        assert!(size > 0, "need at least one rank");
        assert!(rank < size, "rank out of range");
        let n = graph.num_vertices();
        let vl = ((u64::from(n) * u64::from(rank)) / u64::from(size)) as Vertex;
        let vh = ((u64::from(n) * (u64::from(rank) + 1)) / u64::from(size)) as Vertex;
        let mut in_offsets = Vec::with_capacity((vh - vl) as usize + 1);
        let mut in_sources = Vec::new();
        let mut in_probs = Vec::new();
        in_offsets.push(0);
        for v in vl..vh {
            in_sources.extend_from_slice(graph.in_neighbors(v));
            in_probs.extend_from_slice(graph.in_probs(v));
            in_offsets.push(in_sources.len());
        }
        Self {
            num_vertices: n,
            vl,
            vh,
            in_offsets,
            in_sources,
            in_probs,
        }
    }

    /// True if this rank owns vertex `v`.
    #[inline]
    #[must_use]
    pub fn owns(&self, v: Vertex) -> bool {
        (self.vl..self.vh).contains(&v)
    }

    /// The owner rank of vertex `v` under the same equal-interval split.
    #[inline]
    #[must_use]
    pub fn owner_of(v: Vertex, n: u32, size: u32) -> u32 {
        // Inverse of the interval formula; linear scan-free.
        (((u64::from(v) + 1) * u64::from(size)).div_ceil(u64::from(n)) as u32 - 1).min(size - 1)
    }

    /// In-neighbors of owned vertex `v`.
    #[inline]
    #[must_use]
    pub fn in_neighbors(&self, v: Vertex) -> &[Vertex] {
        debug_assert!(self.owns(v));
        let i = (v - self.vl) as usize;
        &self.in_sources[self.in_offsets[i]..self.in_offsets[i + 1]]
    }

    /// Probabilities aligned with [`GraphPartition::in_neighbors`].
    #[inline]
    #[must_use]
    pub fn in_probs(&self, v: Vertex) -> &[f32] {
        debug_assert!(self.owns(v));
        let i = (v - self.vl) as usize;
        &self.in_probs[self.in_offsets[i]..self.in_offsets[i + 1]]
    }

    /// Number of edges stored on this rank.
    #[must_use]
    pub fn local_edges(&self) -> usize {
        self.in_sources.len()
    }

    /// Resident bytes of this rank's slice.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.in_offsets.len() * size_of::<usize>()
            + self.in_sources.len() * size_of::<Vertex>()
            + self.in_probs.len() * size_of::<f32>()
    }

    /// Expands owned vertex `v` for sample stream `sample_seed`: returns the
    /// in-neighbors whose edges are live, drawing coins from the `(sample,
    /// vertex)`-keyed stream. `out` is extended, not cleared.
    pub fn expand(
        &self,
        model: DiffusionModel,
        sample_seed: u64,
        v: Vertex,
        out: &mut Vec<Vertex>,
    ) -> u64 {
        let mut rng = SplitMix64::for_stream(sample_seed, u64::from(v));
        let sources = self.in_neighbors(v);
        let probs = self.in_probs(v);
        expand_with(model, &mut rng, sources, probs, out)
    }
}

/// Shared live-edge logic for one vertex expansion; returns edges examined.
fn expand_with(
    model: DiffusionModel,
    rng: &mut SplitMix64,
    sources: &[Vertex],
    probs: &[f32],
    out: &mut Vec<Vertex>,
) -> u64 {
    match model {
        DiffusionModel::IndependentCascade => {
            for (&u, &p) in sources.iter().zip(probs) {
                if rng.unit_f64() < f64::from(p) {
                    out.push(u);
                }
            }
            sources.len() as u64
        }
        DiffusionModel::LinearThreshold => {
            let draw = rng.unit_f64();
            let mut acc = 0.0f64;
            let mut examined = 0u64;
            for (&u, &p) in sources.iter().zip(probs) {
                examined += 1;
                acc += f64::from(p);
                if draw < acc {
                    out.push(u);
                    break;
                }
            }
            examined
        }
    }
}

/// Expands one vertex-cut chunk of `v`'s in-list for sample stream
/// `sample_seed`, flipping exactly the coins the sequential reference flips
/// for that slice of the in-edge order; returns edges examined.
///
/// The `(sample, vertex)` stream is a counter (SplitMix64), so a chunk that
/// starts at in-edge `edge_start` lands on its coins with one O(1)
/// [`SplitMix64::skip`] — under independent cascade the union of the chunks'
/// live edges is bitwise the full expansion. Under linear threshold all
/// chunks share the *first* draw and the chunk's stored `lt_prefix` (the
/// exact sequential accumulator value at the chunk boundary) decides locally
/// whether the threshold falls before, inside, or after the chunk, so at
/// most one chunk across all ranks emits the (single) live edge.
pub fn expand_shard_chunk(
    model: DiffusionModel,
    sample_seed: u64,
    v: Vertex,
    chunk: ChunkView<'_>,
    out: &mut Vec<Vertex>,
) -> u64 {
    let mut rng = SplitMix64::for_stream(sample_seed, u64::from(v));
    match model {
        DiffusionModel::IndependentCascade => {
            rng.skip(u64::from(chunk.edge_start));
            for (&u, &p) in chunk.sources.iter().zip(chunk.probs) {
                if rng.unit_f64() < f64::from(p) {
                    out.push(u);
                }
            }
            chunk.sources.len() as u64
        }
        DiffusionModel::LinearThreshold => {
            let draw = rng.unit_f64();
            if draw < chunk.lt_prefix {
                // The threshold fell in an earlier chunk; its owner emits
                // the live edge. (Probabilities are non-negative, so the
                // accumulator is monotone and this test is exact.)
                return 0;
            }
            let mut acc = chunk.lt_prefix;
            let mut examined = 0u64;
            for (&u, &p) in chunk.sources.iter().zip(chunk.probs) {
                examined += 1;
                acc += f64::from(p);
                if draw < acc {
                    out.push(u);
                    break;
                }
            }
            examined
        }
    }
}

/// Sequential reference for the `(sample, vertex)`-keyed RRR generation:
/// semantically identical to `generate_rrr` (same live-edge distribution),
/// but with coin flips keyed so that a partitioned traversal can reproduce
/// it exactly.
#[must_use]
pub fn vertex_keyed_rrr(
    graph: &Graph,
    model: DiffusionModel,
    factory: &StreamFactory,
    sample_index: u64,
    scratch: &mut RrrScratch,
) -> Vec<Vertex> {
    let mut root_rng = factory.sample_stream(sample_index);
    let root = root_rng.bounded_u64(u64::from(graph.num_vertices())) as Vertex;
    let sample_seed = sample_stream_seed(factory, sample_index);
    let mut frontier = vec![root];
    let mut next = Vec::new();
    let mut visited = scratch_visited(scratch, graph.num_vertices());
    visited[root as usize] = true;
    let mut members = vec![root];
    while !frontier.is_empty() {
        next.clear();
        for &v in &frontier {
            let mut rng = SplitMix64::for_stream(sample_seed, u64::from(v));
            let _ = expand_with(
                model,
                &mut rng,
                graph.in_neighbors(v),
                graph.in_probs(v),
                &mut next,
            );
        }
        frontier.clear();
        for &u in &next {
            if !visited[u as usize] {
                visited[u as usize] = true;
                members.push(u);
                frontier.push(u);
            }
        }
    }
    members.sort_unstable();
    members
}

/// Derives the per-sample seed used for `(sample, vertex)` coin-flip
/// streams (shared by the reference and the partitioned engine).
#[must_use]
pub fn sample_stream_seed(factory: &StreamFactory, sample_index: u64) -> u64 {
    // One draw off the sample's own stream, domain-separated from the root
    // draw by position (root is the first draw).
    let mut rng = factory.sample_stream(sample_index);
    let _root = rng.next_u64();
    rng.next_u64()
}

/// Draws sample `index`'s root exactly as the replicated engines do.
#[must_use]
pub fn sample_root(factory: &StreamFactory, index: u64, n: u32) -> Vertex {
    let mut rng = factory.sample_stream(index);
    rng.bounded_u64(u64::from(n)) as Vertex
}

// Plain boolean visited buffer; RrrScratch's epoch array is private to the
// rrr module, so partitioned traversal keeps its own simple state.
fn scratch_visited(_scratch: &mut RrrScratch, n: u32) -> Vec<bool> {
    vec![false; n as usize]
}

/// Collects the union of per-rank member fragments of one sample into a
/// sorted vertex list (helper for gathering cooperative samples to their
/// home rank).
#[must_use]
pub fn merge_fragments(fragments: &[Vec<Vertex>]) -> Vec<Vertex> {
    let mut all: Vec<Vertex> = fragments.iter().flatten().copied().collect();
    all.sort_unstable();
    all.dedup();
    all
}

/// Builds a [`RrrCollection`] from per-sample merged fragment lists.
#[must_use]
pub fn collection_from_samples(samples: Vec<Vec<Vertex>>) -> RrrCollection {
    let mut c = RrrCollection::new();
    for s in samples {
        c.push(&s);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripples_graph::generators::erdos_renyi;
    use ripples_graph::{GraphBuilder, WeightModel};

    fn graph() -> Graph {
        erdos_renyi(120, 900, WeightModel::UniformRandom { seed: 5 }, false, 31)
    }

    #[test]
    fn partitions_cover_all_edges() {
        let g = graph();
        for size in [1u32, 2, 3, 5] {
            let total: usize = (0..size)
                .map(|r| GraphPartition::extract(&g, r, size).local_edges())
                .sum();
            assert_eq!(total, g.num_edges(), "size {size}");
        }
    }

    #[test]
    fn ownership_is_consistent() {
        let g = graph();
        let size = 4;
        let parts: Vec<GraphPartition> = (0..size)
            .map(|r| GraphPartition::extract(&g, r, size))
            .collect();
        for v in 0..g.num_vertices() {
            let owner = GraphPartition::owner_of(v, g.num_vertices(), size);
            assert!(parts[owner as usize].owns(v), "vertex {v} owner {owner}");
            let owning: Vec<u32> = (0..size).filter(|&r| parts[r as usize].owns(v)).collect();
            assert_eq!(owning, vec![owner], "vertex {v} owned by {owning:?}");
        }
    }

    #[test]
    fn partition_adjacency_matches_graph() {
        let g = graph();
        let part = GraphPartition::extract(&g, 1, 3);
        for v in part.vl..part.vh {
            assert_eq!(part.in_neighbors(v), g.in_neighbors(v));
            assert_eq!(part.in_probs(v), g.in_probs(v));
        }
    }

    #[test]
    fn vertex_keyed_reference_contains_root_and_is_sorted() {
        let g = graph();
        let f = StreamFactory::new(77);
        let mut scratch = RrrScratch::new(g.num_vertices());
        for model in [
            DiffusionModel::IndependentCascade,
            DiffusionModel::LinearThreshold,
        ] {
            for idx in 0..50u64 {
                let root = sample_root(&f, idx, g.num_vertices());
                let s = vertex_keyed_rrr(&g, model, &f, idx, &mut scratch);
                assert!(s.binary_search(&root).is_ok());
                assert!(s.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn vertex_keyed_matches_expand_per_partition() {
        // Expanding through a partition must flip the same coins as the
        // reference (same (sample, vertex) stream).
        let g = graph();
        let f = StreamFactory::new(13);
        let seed = sample_stream_seed(&f, 9);
        let part = GraphPartition::extract(&g, 0, 1);
        for v in 0..g.num_vertices() {
            let mut from_part = Vec::new();
            part.expand(DiffusionModel::IndependentCascade, seed, v, &mut from_part);
            let mut rng = SplitMix64::for_stream(seed, u64::from(v));
            let mut reference = Vec::new();
            expand_with(
                DiffusionModel::IndependentCascade,
                &mut rng,
                g.in_neighbors(v),
                g.in_probs(v),
                &mut reference,
            );
            assert_eq!(from_part, reference, "vertex {v}");
        }
    }

    #[test]
    fn shard_chunks_reproduce_expansion_bitwise() {
        // The union (in rank order) of per-chunk expansions must equal the
        // full-graph expansion exactly, for both models, at every cut width.
        use ripples_graph::partition::VertexCutShard;
        let g = graph();
        let f = StreamFactory::new(21);
        for model in [
            DiffusionModel::IndependentCascade,
            DiffusionModel::LinearThreshold,
        ] {
            for size in [1u32, 2, 3, 4] {
                let shards: Vec<VertexCutShard> = (0..size)
                    .map(|r| VertexCutShard::extract(&g, r, size))
                    .collect();
                for idx in 0..20u64 {
                    let seed = sample_stream_seed(&f, idx);
                    for v in 0..g.num_vertices() {
                        let mut reference = Vec::new();
                        let mut rng = SplitMix64::for_stream(seed, u64::from(v));
                        let ref_examined = expand_with(
                            model,
                            &mut rng,
                            g.in_neighbors(v),
                            g.in_probs(v),
                            &mut reference,
                        );
                        let mut union = Vec::new();
                        let mut examined = 0u64;
                        for shard in &shards {
                            if let Some(chunk) = shard.chunk(v) {
                                examined += expand_shard_chunk(model, seed, v, chunk, &mut union);
                            }
                        }
                        assert_eq!(union, reference, "model {model:?} size {size} v {v}");
                        if model == DiffusionModel::IndependentCascade {
                            assert_eq!(examined, ref_examined, "IC examines every edge");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn merge_fragments_dedups_and_sorts() {
        let merged = merge_fragments(&[vec![5, 1], vec![3, 1], vec![]]);
        assert_eq!(merged, vec![1, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn bad_rank_panics() {
        let g = GraphBuilder::new(4).build().unwrap();
        let _ = GraphPartition::extract(&g, 2, 2);
    }
}
