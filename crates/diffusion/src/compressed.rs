//! Delta-varint compressed RRR storage and its compressed inverted index.
//!
//! §3.1's storage discussion is all about the memory wall: θ grows
//! super-linearly in accuracy, and the paper's Table 2 runs ran out of
//! memory on the largest inputs (the ◦ entries). This module pushes the
//! paper's one-direction layout one step further: because each sample is
//! *sorted by vertex id*, consecutive gaps are small and LEB128-varint
//! delta coding shrinks the arena by another 2–3× on typical inputs — at
//! the price of sequential-only access (no binary search inside a sample).
//! `benches/ablation_compression.rs` quantifies the trade against
//! [`crate::RrrCollection`].
//!
//! [`CompressedRrrCollection`] is the `varint` backend of the
//! [`crate::store::RrrStore`] family; [`CompressedSampleIndex`] is the
//! matching gap-varint inverted index (vertex → ascending sample ids) that
//! lets the fused selection engine and the distributed per-rank purge run
//! decode-on-touch over compressed blocks without ever materializing the
//! flat layout.

use crate::rrr::{RrrCollection, SampleArena};
use crate::store::RrrStore;
use ripples_graph::Vertex;

/// A compressed, append-only collection of sorted RRR sets.
#[derive(Clone, Debug, Default)]
pub struct CompressedRrrCollection {
    offsets: Vec<usize>,
    /// Per-sample vertex counts (decode hint; also enables `len` queries
    /// without decoding).
    counts: Vec<u32>,
    data: Vec<u8>,
    /// Samples that arrived unsorted and were repaired on insert — same
    /// contract as [`RrrCollection::push`]. Diagnostic only; excluded from
    /// equality.
    unsorted_pushes: u64,
}

impl PartialEq for CompressedRrrCollection {
    fn eq(&self, other: &Self) -> bool {
        self.offsets == other.offsets && self.counts == other.counts && self.data == other.data
    }
}

impl Eq for CompressedRrrCollection {}

#[inline]
pub(crate) fn push_varint(data: &mut Vec<u8>, mut x: u32) {
    loop {
        let byte = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            data.push(byte);
            return;
        }
        data.push(byte | 0x80);
    }
}

#[inline]
pub(crate) fn read_varint(data: &[u8], pos: &mut usize) -> u32 {
    let mut x = 0u32;
    let mut shift = 0u32;
    loop {
        let byte = data[*pos];
        *pos += 1;
        x |= u32::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return x;
        }
        shift += 7;
    }
}

/// Encoded byte length of `x` under LEB128 (1–5 bytes for a `u32`).
#[inline]
pub(crate) fn varint_len(x: u32) -> usize {
    if x == 0 {
        1
    } else {
        (38 - x.leading_zeros() as usize) / 7
    }
}

/// Exact encoded byte length of a sorted, deduplicated sample under the
/// delta-varint block layout of [`encode_sample`].
#[inline]
pub(crate) fn encoded_len(vertices: &[Vertex]) -> usize {
    let mut len = 0;
    let mut prev: Vertex = 0;
    for (idx, &v) in vertices.iter().enumerate() {
        len += varint_len(if idx == 0 { v } else { v - prev - 1 });
        prev = v;
    }
    len
}

/// Appends a sorted, deduplicated sample as one delta-varint block (first
/// id absolute, then gap-1 deltas) — shared by every compressed backend.
#[inline]
pub(crate) fn encode_sample(data: &mut Vec<u8>, vertices: &[Vertex]) {
    let mut prev: Vertex = 0;
    for (idx, &v) in vertices.iter().enumerate() {
        if idx == 0 {
            push_varint(data, v);
        } else {
            push_varint(data, v - prev - 1);
        }
        prev = v;
    }
}

/// Decodes one delta-varint block of `count` ids starting at `*pos`,
/// streaming each vertex to `f`.
#[inline]
pub(crate) fn decode_sample(data: &[u8], pos: &mut usize, count: u32, mut f: impl FnMut(Vertex)) {
    let mut prev: Vertex = 0;
    for idx in 0..count {
        let raw = read_varint(data, pos);
        let v = if idx == 0 { raw } else { prev + raw + 1 };
        f(v);
        prev = v;
    }
}

impl CompressedRrrCollection {
    /// Creates an empty collection.
    #[must_use]
    pub fn new() -> Self {
        Self {
            offsets: vec![0],
            counts: Vec::new(),
            data: Vec::new(),
            unsorted_pushes: 0,
        }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Vertex count of sample `i` (no decoding needed).
    #[must_use]
    pub fn sample_len(&self, i: usize) -> usize {
        self.counts[i] as usize
    }

    /// Total vertex entries across all samples.
    #[must_use]
    pub fn total_entries(&self) -> u64 {
        self.counts.iter().map(|&c| u64::from(c)).sum()
    }

    /// Appends a sample. Enforces the same always-on sorted/deduped
    /// contract as [`RrrCollection::push`]: a violating sample is repaired
    /// (sorted + deduplicated) and counted in
    /// [`CompressedRrrCollection::unsorted_pushes`], so the compressed
    /// layout stays bitwise-convertible to the flat reference.
    pub fn push(&mut self, vertices: &[Vertex]) {
        if vertices.windows(2).all(|w| w[0] < w[1]) {
            encode_sample(&mut self.data, vertices);
            self.counts.push(vertices.len() as u32);
        } else {
            self.unsorted_pushes += 1;
            let mut repaired = vertices.to_vec();
            repaired.sort_unstable();
            repaired.dedup();
            encode_sample(&mut self.data, &repaired);
            self.counts.push(repaired.len() as u32);
        }
        self.offsets.push(self.data.len());
    }

    /// Appends the samples of `arenas` in arena order — the same sample
    /// order [`RrrCollection::append_arenas`] produces, so a compressed
    /// store filled through the parallel sampling path decodes bitwise
    /// identical to the flat reference. Arena content is already validated
    /// sorted by [`SampleArena::append_with`]; repairs that happened inside
    /// the arenas carry over into `unsorted_pushes`.
    pub fn append_arenas(&mut self, arenas: &[SampleArena]) {
        let new_samples: usize = arenas.iter().map(SampleArena::len).sum();
        // A measuring pre-pass buys exact `reserve_exact` calls: amortized
        // `reserve` doubles capacity, and `resident_bytes` (the peak-memory
        // metric compression exists to shrink) reports capacity, so slack
        // here would show up as phantom peak bytes.
        let new_bytes: usize = arenas
            .iter()
            .flat_map(|a| (0..a.len()).map(|i| encoded_len(a.get(i))))
            .sum();
        self.counts.reserve_exact(new_samples);
        self.offsets.reserve_exact(new_samples);
        self.data.reserve_exact(new_bytes);
        for arena in arenas {
            for i in 0..arena.len() {
                let set = arena.get(i);
                encode_sample(&mut self.data, set);
                self.counts.push(set.len() as u32);
                self.offsets.push(self.data.len());
            }
            self.unsorted_pushes += arena.unsorted_repairs();
        }
    }

    /// Number of pushed samples that violated the sorted/deduped contract
    /// and were repaired on insert.
    #[must_use]
    pub fn unsorted_pushes(&self) -> u64 {
        self.unsorted_pushes
    }

    /// The raw block-offset array: `len() + 1` entries bounding each
    /// sample's varint block in [`CompressedRrrCollection::raw_bytes`].
    /// Snapshot serialization surface (`ripples-serve`).
    #[must_use]
    pub fn raw_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Per-sample vertex counts. Snapshot serialization surface.
    #[must_use]
    pub fn raw_counts(&self) -> &[u32] {
        &self.counts
    }

    /// The delta-varint byte arena. Snapshot serialization surface.
    #[must_use]
    pub fn raw_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Rebuilds a collection from deserialized raw parts, re-validating
    /// every invariant a push sequence would have established: offsets
    /// start at 0, stay monotone, and end at `data.len()`; every block is
    /// a well-formed LEB128 stream that decodes exactly `counts[i]`
    /// strictly-ascending vertices in exactly its offset span. Truncated or
    /// bit-flipped blocks are reported by sample index and byte offset —
    /// the snapshot-restore path turns these into structured errors rather
    /// than panicking inside the unchecked hot-path decoder.
    ///
    /// # Errors
    ///
    /// Any violated invariant, as human-readable text naming the field.
    pub fn from_raw_parts(
        offsets: Vec<usize>,
        counts: Vec<u32>,
        data: Vec<u8>,
    ) -> Result<Self, String> {
        if offsets.len() != counts.len() + 1 {
            return Err(format!(
                "offsets length {} != counts length {} + 1",
                offsets.len(),
                counts.len()
            ));
        }
        if offsets.first() != Some(&0) {
            return Err("offsets[0] must be 0".to_string());
        }
        if let Some(i) = offsets.windows(2).position(|w| w[0] > w[1]) {
            return Err(format!("offsets[{}] > offsets[{}]", i, i + 1));
        }
        if *offsets.last().expect("non-empty checked above") != data.len() {
            return Err(format!(
                "offsets[{}] = {} != data length {}",
                offsets.len() - 1,
                offsets.last().expect("non-empty"),
                data.len()
            ));
        }
        // Checked decode of every block: the hot-path decoder assumes
        // well-formed input, so corruption must be rejected here.
        for (i, &count) in counts.iter().enumerate() {
            let block = &data[offsets[i]..offsets[i + 1]];
            let mut pos = 0usize;
            let mut prev: Vertex = 0;
            for idx in 0..count {
                let mut x = 0u32;
                let mut shift = 0u32;
                loop {
                    let Some(&byte) = block.get(pos) else {
                        return Err(format!("sample {i}: varint truncated at block byte {pos}"));
                    };
                    pos += 1;
                    if shift >= 32 || (shift == 28 && byte & 0x7F > 0x0F) {
                        return Err(format!(
                            "sample {i}: varint overflows u32 at block byte {}",
                            pos - 1
                        ));
                    }
                    x |= u32::from(byte & 0x7F) << shift;
                    if byte & 0x80 == 0 {
                        break;
                    }
                    shift += 7;
                }
                let v = if idx == 0 {
                    x
                } else {
                    match prev.checked_add(x).and_then(|s| s.checked_add(1)) {
                        Some(v) => v,
                        None => {
                            return Err(format!(
                                "sample {i}: delta overflows vertex id at entry {idx}"
                            ));
                        }
                    }
                };
                prev = v;
            }
            if pos != block.len() {
                return Err(format!(
                    "sample {i}: block decodes in {pos} bytes but spans {}",
                    block.len()
                ));
            }
        }
        Ok(Self {
            offsets,
            counts,
            data,
            unsorted_pushes: 0,
        })
    }

    /// Decodes sample `i` into `out` (cleared first).
    pub fn decode_into(&self, i: usize, out: &mut Vec<Vertex>) {
        out.clear();
        let mut pos = self.offsets[i];
        decode_sample(&self.data, &mut pos, self.counts[i], |v| out.push(v));
        debug_assert_eq!(pos, self.offsets[i + 1]);
    }

    /// Streams the vertices of sample `i` to `f` without allocating.
    pub fn for_each_vertex(&self, i: usize, f: impl FnMut(Vertex)) {
        let mut pos = self.offsets[i];
        decode_sample(&self.data, &mut pos, self.counts[i], f);
    }

    /// Membership test by sequential decode (terminates early thanks to the
    /// sorted order).
    #[must_use]
    pub fn contains(&self, i: usize, target: Vertex) -> bool {
        let mut pos = self.offsets[i];
        let count = self.counts[i];
        let mut prev: Vertex = 0;
        for idx in 0..count {
            let raw = read_varint(&self.data, &mut pos);
            let v = if idx == 0 { raw } else { prev + raw + 1 };
            if v == target {
                return true;
            }
            if v > target {
                return false;
            }
            prev = v;
        }
        false
    }

    /// Resident bytes of the compressed arena (the Table 2 comparison
    /// quantity). Reports *reserved capacity*, not just initialized length,
    /// matching [`RrrCollection::resident_bytes`]: a `Vec`'s growth slack is
    /// real allocated memory, and `rrr_bytes_peak` comparisons across
    /// backends would be dishonest if the compressed store ignored it.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.offsets.capacity() * size_of::<usize>()
            + self.counts.capacity() * size_of::<u32>()
            + self.data.capacity()
    }

    /// Greedy max-cover seed selection over the compressed samples —
    /// identical semantics to `ripples-core`'s engines, streaming decodes
    /// instead of binary searches.
    #[must_use]
    pub fn select_greedy(&self, n: u32, k: u32) -> Vec<Vertex> {
        let n_us = n as usize;
        let k = k.min(n);
        let mut counters = vec![0u64; n_us];
        for i in 0..self.len() {
            self.for_each_vertex(i, |v| counters[v as usize] += 1);
        }
        let mut covered = vec![false; self.len()];
        let mut selected = vec![false; n_us];
        let mut seeds = Vec::with_capacity(k as usize);
        for _ in 0..k {
            let mut best: Option<(u64, Vertex)> = None;
            for (v, (&c, &s)) in counters.iter().zip(&selected).enumerate() {
                if s {
                    continue;
                }
                match best {
                    Some((bc, _)) if bc >= c => {}
                    _ => best = Some((c, v as Vertex)),
                }
            }
            let Some((_, v)) = best else { break };
            selected[v as usize] = true;
            seeds.push(v);
            for (i, cov) in covered.iter_mut().enumerate() {
                if *cov || !self.contains(i, v) {
                    continue;
                }
                *cov = true;
                self.for_each_vertex(i, |u| counters[u as usize] -= 1);
            }
        }
        seeds
    }
}

impl From<&RrrCollection> for CompressedRrrCollection {
    fn from(plain: &RrrCollection) -> Self {
        let mut c = Self::new();
        for set in plain.iter() {
            c.push(set);
        }
        c
    }
}

/// A compressed u32-CSR inverted index: vertex → the ascending sample ids
/// containing it, gap-varint coded exactly like the sample payloads (first
/// id absolute, then gap-1 deltas).
///
/// This is the compressed twin of [`crate::SampleIndex`]: per-vertex degrees
/// initialize the greedy counters, and `for_each_sample` drives the
/// cover/decrement steps of the fused selection engine and the per-rank
/// distributed purge — streaming straight over compressed blocks, so
/// neither the index nor the collection is ever materialized flat.
#[derive(Clone, Debug)]
pub struct CompressedSampleIndex {
    /// Per-vertex end byte offsets into `data` (`offsets[0] == 0`,
    /// length `n + 1`).
    offsets: Vec<usize>,
    /// Per-vertex sample counts.
    degrees: Vec<u32>,
    data: Vec<u8>,
}

impl CompressedSampleIndex {
    /// Builds the index by streaming `store` twice: one pass to size each
    /// vertex's byte run exactly, one pass to fill — no intermediate
    /// per-vertex `Vec`s, so peak transient memory is the finished index
    /// itself plus two small cursor arrays.
    ///
    /// # Panics
    ///
    /// Panics if the store holds more than `u32::MAX` samples (the u32-CSR
    /// contract shared with [`crate::SampleIndex`]).
    #[must_use]
    pub fn build<S: RrrStore + ?Sized>(store: &S, num_vertices: u32) -> Self {
        let n = num_vertices as usize;
        assert!(
            u32::try_from(store.len()).is_ok(),
            "sample count exceeds the u32 index contract"
        );
        // Pass 1: per-vertex degree and exact encoded byte length. Sample
        // ids arrive in ascending order per vertex (samples are streamed in
        // id order), so the gap coding matches the fill pass bit for bit.
        let mut degrees = vec![0u32; n];
        let mut byte_lens = vec![0usize; n];
        let mut last = vec![0u32; n];
        for i in 0..store.len() {
            let id = i as u32;
            store.for_each_vertex(i, |v| {
                let v = v as usize;
                byte_lens[v] += if degrees[v] == 0 {
                    varint_len(id)
                } else {
                    varint_len(id - last[v] - 1)
                };
                degrees[v] += 1;
                last[v] = id;
            });
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for &b in &byte_lens {
            acc += b;
            offsets.push(acc);
        }
        // Pass 2: fill each vertex's run through a moving cursor.
        let mut data = vec![0u8; acc];
        let mut cursors: Vec<usize> = offsets[..n].to_vec();
        let mut seen = vec![0u32; n];
        last.fill(0);
        for i in 0..store.len() {
            let id = i as u32;
            store.for_each_vertex(i, |v| {
                let v = v as usize;
                let gap = if seen[v] == 0 { id } else { id - last[v] - 1 };
                let mut x = gap;
                loop {
                    let byte = (x & 0x7F) as u8;
                    x >>= 7;
                    if x == 0 {
                        data[cursors[v]] = byte;
                        cursors[v] += 1;
                        break;
                    }
                    data[cursors[v]] = byte | 0x80;
                    cursors[v] += 1;
                }
                seen[v] += 1;
                last[v] = id;
            });
        }
        debug_assert!(cursors.iter().zip(&offsets[1..]).all(|(c, o)| c == o));
        Self {
            offsets,
            degrees,
            data,
        }
    }

    /// Number of vertices the index covers.
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.degrees.len()
    }

    /// Number of samples containing vertex `v`.
    #[must_use]
    pub fn degree(&self, v: Vertex) -> u32 {
        self.degrees[v as usize]
    }

    /// Streams the ascending sample ids containing `v` to `f`.
    pub fn for_each_sample(&self, v: Vertex, mut f: impl FnMut(usize)) {
        let v = v as usize;
        let mut pos = self.offsets[v];
        let mut prev = 0u32;
        for idx in 0..self.degrees[v] {
            let raw = read_varint(&self.data, &mut pos);
            let id = if idx == 0 { raw } else { prev + raw + 1 };
            f(id as usize);
            prev = id;
        }
        debug_assert_eq!(pos, self.offsets[v + 1]);
    }

    /// Resident bytes of the index (capacity-based, like every storage
    /// footprint in the pipeline).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.offsets.capacity() * size_of::<usize>()
            + self.degrees.capacity() * size_of::<u32>()
            + self.data.capacity()
    }
}

/// An *incremental* gap-varint inverted index (vertex → ascending sample
/// ids), the append-friendly sibling of [`CompressedSampleIndex`].
///
/// IMM's θ-doubling loop selects over the same store every round while the
/// store only ever grows at the tail. Rebuilding a CSR index per round
/// costs two full-store streaming decodes each time — the dominant
/// selection overhead of the compressed backends. This structure instead
/// keeps one growable gap-varint run per vertex and [`absorb`]s only the
/// samples appended since the last call, so the total index-build work
/// across all rounds is a single pass over the final store.
///
/// Because sample ids arrive in ascending order, appending preserves the
/// exact gap coding ([`CompressedSampleIndex`]'s layout per vertex), and
/// `for_each_sample` streams identical id sequences — selection results
/// stay bitwise identical regardless of which index form drives them.
///
/// [`absorb`]: IncrementalSampleIndex::absorb
#[derive(Clone, Debug)]
pub struct IncrementalSampleIndex {
    /// Per-vertex gap-varint run of ascending sample ids.
    bufs: Vec<Vec<u8>>,
    /// Per-vertex sample counts.
    degrees: Vec<u32>,
    /// Per-vertex last absorbed sample id (gap-coding state).
    last: Vec<u32>,
    /// Samples consumed from the store so far; `absorb` resumes here.
    absorbed: usize,
}

impl IncrementalSampleIndex {
    /// Creates an empty index over `num_vertices` vertices.
    #[must_use]
    pub fn new(num_vertices: u32) -> Self {
        let n = num_vertices as usize;
        Self {
            bufs: vec![Vec::new(); n],
            degrees: vec![0; n],
            last: vec![0; n],
            absorbed: 0,
        }
    }

    /// Appends every sample `store` gained since the previous `absorb` (all
    /// of them on the first call). The store must be the same append-only
    /// store across calls — samples already absorbed are never re-read.
    ///
    /// # Panics
    ///
    /// Panics if the store holds more than `u32::MAX` samples (the u32
    /// index contract shared with [`CompressedSampleIndex`]).
    pub fn absorb<S: RrrStore + ?Sized>(&mut self, store: &S) {
        assert!(
            u32::try_from(store.len()).is_ok(),
            "sample count exceeds the u32 index contract"
        );
        for i in self.absorbed..store.len() {
            let id = i as u32;
            store.for_each_vertex(i, |v| {
                let v = v as usize;
                let gap = if self.degrees[v] == 0 {
                    id
                } else {
                    id - self.last[v] - 1
                };
                push_varint(&mut self.bufs[v], gap);
                self.degrees[v] += 1;
                self.last[v] = id;
            });
        }
        self.absorbed = store.len();
    }

    /// Number of samples absorbed so far.
    #[must_use]
    pub fn absorbed_samples(&self) -> usize {
        self.absorbed
    }

    /// Number of vertices the index covers.
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.degrees.len()
    }

    /// Number of absorbed samples containing vertex `v`.
    #[must_use]
    pub fn degree(&self, v: Vertex) -> u32 {
        self.degrees[v as usize]
    }

    /// Streams the ascending sample ids containing `v` to `f`.
    pub fn for_each_sample(&self, v: Vertex, mut f: impl FnMut(usize)) {
        let v = v as usize;
        let data = &self.bufs[v];
        let mut pos = 0usize;
        let mut prev = 0u32;
        for idx in 0..self.degrees[v] {
            let raw = read_varint(data, &mut pos);
            let id = if idx == 0 { raw } else { prev + raw + 1 };
            f(id as usize);
            prev = id;
        }
        debug_assert_eq!(pos, data.len());
    }

    /// Resident bytes of the index (capacity-based): the per-vertex runs
    /// plus the `Vec` headers and cursor arrays.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.bufs.iter().map(Vec::capacity).sum::<usize>()
            + self.bufs.capacity() * size_of::<Vec<u8>>()
            + self.degrees.capacity() * size_of::<u32>()
            + self.last.capacity() * size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let mut data = Vec::new();
        let values = [0u32, 1, 127, 128, 300, 16383, 16384, u32::MAX];
        for &v in &values {
            push_varint(&mut data, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&data, &mut pos), v);
        }
        assert_eq!(pos, data.len());
    }

    #[test]
    fn varint_len_matches_encoding() {
        for v in [0u32, 1, 127, 128, 16383, 16384, 1 << 21, u32::MAX] {
            let mut data = Vec::new();
            push_varint(&mut data, v);
            assert_eq!(varint_len(v), data.len(), "value {v}");
        }
    }

    #[test]
    fn push_decode_roundtrip() {
        let mut c = CompressedRrrCollection::new();
        let samples: Vec<Vec<Vertex>> = vec![
            vec![5],
            vec![0, 1, 2, 3],
            vec![],
            vec![100, 5_000, 1_000_000],
        ];
        for s in &samples {
            c.push(s);
        }
        assert_eq!(c.len(), 4);
        assert_eq!(c.total_entries(), 8);
        let mut out = Vec::new();
        for (i, s) in samples.iter().enumerate() {
            c.decode_into(i, &mut out);
            assert_eq!(&out, s, "sample {i}");
            assert_eq!(c.sample_len(i), s.len());
        }
    }

    #[test]
    fn contains_matches_decode() {
        let mut c = CompressedRrrCollection::new();
        c.push(&[2, 7, 9, 30]);
        for v in 0..40 {
            let expect = [2, 7, 9, 30].contains(&v);
            assert_eq!(c.contains(0, v), expect, "vertex {v}");
        }
    }

    #[test]
    fn unsorted_push_is_repaired_and_counted() {
        // Same always-on repair contract as the flat collection: an
        // unsorted sample must never corrupt the delta coding (a negative
        // gap would wrap) even in release builds.
        let mut c = CompressedRrrCollection::new();
        c.push(&[5, 1, 3, 3]);
        assert_eq!(c.unsorted_pushes(), 1);
        let mut out = Vec::new();
        c.decode_into(0, &mut out);
        assert_eq!(out, vec![1, 3, 5]);
        let mut clean = CompressedRrrCollection::new();
        clean.push(&[1, 3, 5]);
        assert_eq!(clean.unsorted_pushes(), 0);
        assert_eq!(c, clean, "repair must normalize to the sorted encoding");
    }

    #[test]
    fn resident_bytes_reports_reserved_capacity() {
        // Regression (ISSUE 8 satellite): resident_bytes used to sum
        // `len()`s, under-reporting the growth slack a Vec actually holds.
        // Capacity-based accounting must dominate the len-based figure and
        // track reserve() even before any data lands.
        let mut c = CompressedRrrCollection::new();
        for base in 0..64u32 {
            c.push(&[base, base + 2, base + 300]);
        }
        use std::mem::size_of;
        let len_based =
            c.offsets.len() * size_of::<usize>() + c.counts.len() * size_of::<u32>() + c.data.len();
        assert!(
            c.resident_bytes() >= len_based,
            "capacity accounting {} must dominate len accounting {len_based}",
            c.resident_bytes()
        );
        let before = c.resident_bytes();
        c.data.reserve(1 << 16);
        assert!(
            c.resident_bytes() >= before + (1 << 16),
            "reserved-but-unused capacity must be visible: {} vs {before}",
            c.resident_bytes()
        );
        assert_eq!(
            len_based,
            c.offsets.len() * size_of::<usize>() + c.counts.len() * size_of::<u32>() + c.data.len(),
            "reserve must not change the len-based figure"
        );
    }

    #[test]
    fn compression_beats_plain_on_dense_sorted_sets() {
        let mut plain = RrrCollection::new();
        for base in 0..200u32 {
            let set: Vec<Vertex> = (0..64).map(|i| base + 3 * i).collect();
            plain.push(&set);
        }
        let compressed = CompressedRrrCollection::from(&plain);
        assert!(
            compressed.resident_bytes() * 2 < plain.resident_bytes(),
            "compressed {} not ≪ plain {}",
            compressed.resident_bytes(),
            plain.resident_bytes()
        );
        // Contents identical.
        let mut out = Vec::new();
        for i in 0..plain.len() {
            compressed.decode_into(i, &mut out);
            assert_eq!(out.as_slice(), plain.get(i));
        }
    }

    #[test]
    fn append_arenas_matches_pushes() {
        let mut a0 = SampleArena::with_capacity(2);
        a0.append_with(|buf| {
            buf.extend_from_slice(&[1, 3, 5]);
            0
        });
        a0.append_with(|buf| {
            buf.extend_from_slice(&[2]);
            0
        });
        let mut a1 = SampleArena::default();
        a1.append_with(|_| 0);
        a1.append_with(|buf| {
            buf.extend_from_slice(&[0, 4]);
            0
        });
        let mut merged = CompressedRrrCollection::new();
        merged.push(&[9]);
        merged.append_arenas(&[a0, a1]);
        let mut reference = CompressedRrrCollection::new();
        for s in [&[9][..], &[1, 3, 5], &[2], &[], &[0, 4]] {
            reference.push(s);
        }
        assert_eq!(merged, reference);
        assert_eq!(merged.unsorted_pushes(), 0);
    }

    #[test]
    fn greedy_selection_matches_plain_engine() {
        // Build a deterministic pseudo-random collection.
        let mut plain = RrrCollection::new();
        let mut x = 12345u32;
        for _ in 0..80 {
            let mut set: Vec<Vertex> = (0..6)
                .map(|_| {
                    x = x.wrapping_mul(1103515245).wrapping_add(12345);
                    (x >> 16) % 50
                })
                .collect();
            set.sort_unstable();
            set.dedup();
            plain.push(&set);
        }
        let compressed = CompressedRrrCollection::from(&plain);
        let seeds = compressed.select_greedy(50, 5);
        assert_eq!(seeds.len(), 5);
        // Cross-check against the core engine through the plain layout is
        // done in ripples-core's integration tests; here verify coverage
        // consistency directly.
        let covered = (0..plain.len())
            .filter(|&i| {
                seeds
                    .iter()
                    .any(|&s| plain.get(i).binary_search(&s).is_ok())
            })
            .count();
        assert!(covered > 0);
    }

    #[test]
    fn empty_collection() {
        let c = CompressedRrrCollection::new();
        assert!(c.is_empty());
        assert_eq!(c.select_greedy(10, 3).len(), 3);
    }

    #[test]
    fn index_degrees_and_streams_match_flat_index() {
        let mut c = CompressedRrrCollection::new();
        c.push(&[0, 2, 4]);
        c.push(&[1, 2]);
        c.push(&[]);
        c.push(&[2, 4]);
        let idx = CompressedSampleIndex::build(&c, 5);
        assert_eq!(idx.num_vertices(), 5);
        assert_eq!(idx.degree(0), 1);
        assert_eq!(idx.degree(2), 3);
        assert_eq!(idx.degree(3), 0);
        let mut got = Vec::new();
        idx.for_each_sample(2, |i| got.push(i));
        assert_eq!(got, vec![0, 1, 3], "sample ids must stream ascending");
        got.clear();
        idx.for_each_sample(3, |i| got.push(i));
        assert!(got.is_empty());
        assert!(idx.resident_bytes() > 0);
    }

    #[test]
    fn index_handles_large_sparse_ids() {
        let mut c = CompressedRrrCollection::new();
        for i in 0..300usize {
            // Vertex 7 appears in every 3rd sample; vertex 1000 in all.
            if i % 3 == 0 {
                c.push(&[7, 1000]);
            } else {
                c.push(&[1000]);
            }
        }
        let idx = CompressedSampleIndex::build(&c, 1001);
        assert_eq!(idx.degree(1000), 300);
        assert_eq!(idx.degree(7), 100);
        let mut ids = Vec::new();
        idx.for_each_sample(7, |i| ids.push(i));
        assert_eq!(ids, (0..300).step_by(3).collect::<Vec<_>>());
    }

    #[test]
    fn incremental_index_matches_batch_build_across_absorbs() {
        let mut c = CompressedRrrCollection::new();
        let mut inc = IncrementalSampleIndex::new(6);
        // Grow the store in three uneven rounds, absorbing between them —
        // the θ-doubling access pattern the cache exists for.
        let rounds: [&[&[Vertex]]; 3] = [
            &[&[0, 2, 4], &[1, 2]],
            &[&[], &[2, 4], &[5]],
            &[&[0, 1, 2, 3, 4, 5], &[2]],
        ];
        for round in rounds {
            for s in round {
                c.push(s);
            }
            inc.absorb(&c);
            assert_eq!(inc.absorbed_samples(), c.len());
            let batch = CompressedSampleIndex::build(&c, 6);
            for v in 0..6u32 {
                assert_eq!(inc.degree(v), batch.degree(v), "vertex {v}");
                let (mut a, mut b) = (Vec::new(), Vec::new());
                inc.for_each_sample(v, |i| a.push(i));
                batch.for_each_sample(v, |i| b.push(i));
                assert_eq!(a, b, "vertex {v}");
            }
        }
        // Absorbing with no new samples is a no-op.
        let before = inc.resident_bytes();
        inc.absorb(&c);
        assert_eq!(inc.resident_bytes(), before);
        assert!(inc.num_vertices() == 6);
    }
}
