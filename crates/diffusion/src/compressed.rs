//! Delta-varint compressed RRR storage.
//!
//! §3.1's storage discussion is all about the memory wall: θ grows
//! super-linearly in accuracy, and the paper's Table 2 runs ran out of
//! memory on the largest inputs (the ◦ entries). This module pushes the
//! paper's one-direction layout one step further: because each sample is
//! *sorted by vertex id*, consecutive gaps are small and LEB128-varint
//! delta coding shrinks the arena by another 2–3× on typical inputs — at
//! the price of sequential-only access (no binary search inside a sample).
//! `benches/ablation_compression.rs` quantifies the trade against
//! [`crate::RrrCollection`].

use crate::rrr::RrrCollection;
use ripples_graph::Vertex;

/// A compressed, append-only collection of sorted RRR sets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompressedRrrCollection {
    offsets: Vec<usize>,
    /// Per-sample vertex counts (decode hint; also enables `len` queries
    /// without decoding).
    counts: Vec<u32>,
    data: Vec<u8>,
}

#[inline]
fn push_varint(data: &mut Vec<u8>, mut x: u32) {
    loop {
        let byte = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            data.push(byte);
            return;
        }
        data.push(byte | 0x80);
    }
}

#[inline]
fn read_varint(data: &[u8], pos: &mut usize) -> u32 {
    let mut x = 0u32;
    let mut shift = 0u32;
    loop {
        let byte = data[*pos];
        *pos += 1;
        x |= u32::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return x;
        }
        shift += 7;
    }
}

impl CompressedRrrCollection {
    /// Creates an empty collection.
    #[must_use]
    pub fn new() -> Self {
        Self {
            offsets: vec![0],
            counts: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Vertex count of sample `i` (no decoding needed).
    #[must_use]
    pub fn sample_len(&self, i: usize) -> usize {
        self.counts[i] as usize
    }

    /// Appends a sorted sample (first id absolute, then gap-1 deltas).
    pub fn push(&mut self, vertices: &[Vertex]) {
        debug_assert!(
            vertices.windows(2).all(|w| w[0] < w[1]),
            "sample not sorted"
        );
        let mut prev: Vertex = 0;
        for (idx, &v) in vertices.iter().enumerate() {
            if idx == 0 {
                push_varint(&mut self.data, v);
            } else {
                push_varint(&mut self.data, v - prev - 1);
            }
            prev = v;
        }
        self.offsets.push(self.data.len());
        self.counts.push(vertices.len() as u32);
    }

    /// Decodes sample `i` into `out` (cleared first).
    pub fn decode_into(&self, i: usize, out: &mut Vec<Vertex>) {
        out.clear();
        let mut pos = self.offsets[i];
        let count = self.counts[i];
        let mut prev: Vertex = 0;
        for idx in 0..count {
            let raw = read_varint(&self.data, &mut pos);
            let v = if idx == 0 { raw } else { prev + raw + 1 };
            out.push(v);
            prev = v;
        }
        debug_assert_eq!(pos, self.offsets[i + 1]);
    }

    /// Streams the vertices of sample `i` to `f` without allocating.
    pub fn for_each_vertex(&self, i: usize, mut f: impl FnMut(Vertex)) {
        let mut pos = self.offsets[i];
        let count = self.counts[i];
        let mut prev: Vertex = 0;
        for idx in 0..count {
            let raw = read_varint(&self.data, &mut pos);
            let v = if idx == 0 { raw } else { prev + raw + 1 };
            f(v);
            prev = v;
        }
    }

    /// Membership test by sequential decode (terminates early thanks to the
    /// sorted order).
    #[must_use]
    pub fn contains(&self, i: usize, target: Vertex) -> bool {
        let mut pos = self.offsets[i];
        let count = self.counts[i];
        let mut prev: Vertex = 0;
        for idx in 0..count {
            let raw = read_varint(&self.data, &mut pos);
            let v = if idx == 0 { raw } else { prev + raw + 1 };
            if v == target {
                return true;
            }
            if v > target {
                return false;
            }
            prev = v;
        }
        false
    }

    /// Resident bytes of the compressed arena (the Table 2 comparison
    /// quantity).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.offsets.len() * size_of::<usize>()
            + self.counts.len() * size_of::<u32>()
            + self.data.len()
    }

    /// Greedy max-cover seed selection over the compressed samples —
    /// identical semantics to `ripples-core`'s engines, streaming decodes
    /// instead of binary searches.
    #[must_use]
    pub fn select_greedy(&self, n: u32, k: u32) -> Vec<Vertex> {
        let n_us = n as usize;
        let k = k.min(n);
        let mut counters = vec![0u64; n_us];
        for i in 0..self.len() {
            self.for_each_vertex(i, |v| counters[v as usize] += 1);
        }
        let mut covered = vec![false; self.len()];
        let mut selected = vec![false; n_us];
        let mut seeds = Vec::with_capacity(k as usize);
        for _ in 0..k {
            let mut best: Option<(u64, Vertex)> = None;
            for (v, (&c, &s)) in counters.iter().zip(&selected).enumerate() {
                if s {
                    continue;
                }
                match best {
                    Some((bc, _)) if bc >= c => {}
                    _ => best = Some((c, v as Vertex)),
                }
            }
            let Some((_, v)) = best else { break };
            selected[v as usize] = true;
            seeds.push(v);
            for (i, cov) in covered.iter_mut().enumerate() {
                if *cov || !self.contains(i, v) {
                    continue;
                }
                *cov = true;
                self.for_each_vertex(i, |u| counters[u as usize] -= 1);
            }
        }
        seeds
    }
}

impl From<&RrrCollection> for CompressedRrrCollection {
    fn from(plain: &RrrCollection) -> Self {
        let mut c = Self::new();
        for set in plain.iter() {
            c.push(set);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let mut data = Vec::new();
        let values = [0u32, 1, 127, 128, 300, 16383, 16384, u32::MAX];
        for &v in &values {
            push_varint(&mut data, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&data, &mut pos), v);
        }
        assert_eq!(pos, data.len());
    }

    #[test]
    fn push_decode_roundtrip() {
        let mut c = CompressedRrrCollection::new();
        let samples: Vec<Vec<Vertex>> = vec![
            vec![5],
            vec![0, 1, 2, 3],
            vec![],
            vec![100, 5_000, 1_000_000],
        ];
        for s in &samples {
            c.push(s);
        }
        assert_eq!(c.len(), 4);
        let mut out = Vec::new();
        for (i, s) in samples.iter().enumerate() {
            c.decode_into(i, &mut out);
            assert_eq!(&out, s, "sample {i}");
            assert_eq!(c.sample_len(i), s.len());
        }
    }

    #[test]
    fn contains_matches_decode() {
        let mut c = CompressedRrrCollection::new();
        c.push(&[2, 7, 9, 30]);
        for v in 0..40 {
            let expect = [2, 7, 9, 30].contains(&v);
            assert_eq!(c.contains(0, v), expect, "vertex {v}");
        }
    }

    #[test]
    fn compression_beats_plain_on_dense_sorted_sets() {
        let mut plain = RrrCollection::new();
        for base in 0..200u32 {
            let set: Vec<Vertex> = (0..64).map(|i| base + 3 * i).collect();
            plain.push(&set);
        }
        let compressed = CompressedRrrCollection::from(&plain);
        assert!(
            compressed.resident_bytes() * 2 < plain.resident_bytes(),
            "compressed {} not ≪ plain {}",
            compressed.resident_bytes(),
            plain.resident_bytes()
        );
        // Contents identical.
        let mut out = Vec::new();
        for i in 0..plain.len() {
            compressed.decode_into(i, &mut out);
            assert_eq!(out.as_slice(), plain.get(i));
        }
    }

    #[test]
    fn greedy_selection_matches_plain_engine() {
        // Build a deterministic pseudo-random collection.
        let mut plain = RrrCollection::new();
        let mut x = 12345u32;
        for _ in 0..80 {
            let mut set: Vec<Vertex> = (0..6)
                .map(|_| {
                    x = x.wrapping_mul(1103515245).wrapping_add(12345);
                    (x >> 16) % 50
                })
                .collect();
            set.sort_unstable();
            set.dedup();
            plain.push(&set);
        }
        let compressed = CompressedRrrCollection::from(&plain);
        let seeds = compressed.select_greedy(50, 5);
        assert_eq!(seeds.len(), 5);
        // Cross-check against the core engine through the plain layout is
        // done in ripples-core's integration tests; here verify coverage
        // consistency directly.
        let covered = (0..plain.len())
            .filter(|&i| {
                seeds
                    .iter()
                    .any(|&s| plain.get(i).binary_search(&s).is_ok())
            })
            .count();
        assert!(covered > 0);
    }

    #[test]
    fn empty_collection() {
        let c = CompressedRrrCollection::new();
        assert!(c.is_empty());
        assert_eq!(c.select_greedy(10, 3).len(), 3);
    }
}
