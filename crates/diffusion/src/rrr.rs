//! Random reverse-reachable (RRR) set generation — Algorithm 3's
//! `GenerateRR` — and the compact one-direction sample collection.

use crate::model::DiffusionModel;
use ripples_graph::{Graph, Vertex};
use ripples_rng::RandomSource;

/// Reusable per-thread scratch for RRR generation.
///
/// Visited marks use the epoch trick: bumping a generation counter clears
/// the whole array in O(1), so a thread generating millions of samples
/// never re-touches `n` bytes between samples.
#[derive(Clone, Debug)]
pub struct RrrScratch {
    visited_epoch: Vec<u32>,
    epoch: u32,
    queue: Vec<Vertex>,
}

impl RrrScratch {
    /// Creates scratch sized for a graph with `num_vertices` vertices.
    #[must_use]
    pub fn new(num_vertices: u32) -> Self {
        Self {
            visited_epoch: vec![0; num_vertices as usize],
            epoch: 0,
            queue: Vec::with_capacity(1024),
        }
    }

    #[inline]
    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: hard-clear once every 2^32 samples.
            self.visited_epoch.fill(0);
            self.epoch = 1;
        }
        self.queue.clear();
    }

    #[inline]
    fn visit(&mut self, v: Vertex) -> bool {
        let slot = &mut self.visited_epoch[v as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

/// The outcome of one `GenerateRR` call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RrrSample {
    /// Vertices of the RRR set, **sorted ascending by id** (paper §3.1).
    pub vertices: Vec<Vertex>,
    /// Number of in-edges examined while generating this sample; the unit
    /// of sampling work used by the scaling replay model.
    pub edges_examined: u64,
}

/// Generates one random reverse-reachable set rooted at `root`.
///
/// The BFS walks *incoming* edges and decides lazily, per edge, whether the
/// edge exists in the sampled live-edge graph `g` — `g` is never
/// materialized (paper §3.1). Model semantics:
///
/// * **IC**: every in-edge `(u → v)` of a visited `v` is live independently
///   with probability `p(u→v)`.
/// * **LT**: each visited `v` selects *at most one* live in-edge, choosing
///   `u` with probability `p(u→v)` (weights sum to ≤ 1; the remainder is
///   "no incoming live edge"). This is why LT RRR sets are small — the
///   reverse traversal is a path, not a tree (§4.2's observed LT/IC gap).
#[must_use]
pub fn generate_rrr<R: RandomSource>(
    graph: &Graph,
    model: DiffusionModel,
    root: Vertex,
    rng: &mut R,
    scratch: &mut RrrScratch,
) -> RrrSample {
    let mut vertices = Vec::new();
    let edges_examined = generate_rrr_into(graph, model, root, rng, scratch, &mut vertices);
    RrrSample {
        vertices,
        edges_examined,
    }
}

/// Allocation-free variant of [`generate_rrr`]: appends the sorted RRR set
/// to the tail of `out` (an arena shared across many samples) instead of
/// allocating a per-sample `Vec`. Returns the edges examined. The appended
/// range is sorted in place; the BFS never enqueues a vertex twice, so the
/// result is identical to [`generate_rrr`]'s sorted, deduplicated output.
pub fn generate_rrr_into<R: RandomSource>(
    graph: &Graph,
    model: DiffusionModel,
    root: Vertex,
    rng: &mut R,
    scratch: &mut RrrScratch,
    out: &mut Vec<Vertex>,
) -> u64 {
    debug_assert!(root < graph.num_vertices(), "root out of range");
    scratch.begin();
    scratch.visit(root);
    scratch.queue.push(root);
    let mut head = 0usize;
    let mut edges_examined = 0u64;
    while head < scratch.queue.len() {
        let v = scratch.queue[head];
        head += 1;
        match model {
            DiffusionModel::IndependentCascade => {
                let sources = graph.in_neighbors(v);
                let probs = graph.in_probs(v);
                edges_examined += sources.len() as u64;
                for (&u, &p) in sources.iter().zip(probs) {
                    if rng.unit_f64() < f64::from(p) && scratch.visit(u) {
                        scratch.queue.push(u);
                    }
                }
            }
            DiffusionModel::LinearThreshold => {
                // One uniform draw selects among in-neighbors by weight; the
                // tail probability (1 - Σw) selects "stop here".
                let sources = graph.in_neighbors(v);
                let probs = graph.in_probs(v);
                let draw = rng.unit_f64();
                let mut acc = 0.0f64;
                for (&u, &p) in sources.iter().zip(probs) {
                    edges_examined += 1;
                    acc += f64::from(p);
                    if draw < acc {
                        if scratch.visit(u) {
                            scratch.queue.push(u);
                        }
                        break;
                    }
                }
            }
        }
    }
    let start = out.len();
    out.extend_from_slice(&scratch.queue);
    out[start..].sort_unstable();
    // Live telemetry: every reference-path sample (sequential, parallel
    // chunks, distributed per-rank growth) funnels through here, so one
    // site gives the metrics registry world-total sampling throughput.
    if ripples_metrics::enabled() {
        ripples_metrics::add(ripples_metrics::Metric::SamplesGenerated, 1);
        ripples_metrics::add(ripples_metrics::Metric::EdgesExamined, edges_examined);
        ripples_metrics::observe_rrr_size((out.len() - start) as u64);
    }
    edges_examined
}

/// A worker-local flat `(data, offsets)` sample arena filled during one
/// parallel sampling chunk and merged into an [`RrrCollection`] afterwards
/// by [`RrrCollection::append_arenas`]. Appending a sample costs amortized
/// O(len) with zero per-sample heap allocations.
#[derive(Clone, Debug)]
pub struct SampleArena {
    data: Vec<Vertex>,
    /// Per-sample end offsets into `data` (`offsets[0] == 0`).
    offsets: Vec<usize>,
    unsorted: u64,
}

impl Default for SampleArena {
    fn default() -> Self {
        Self::with_capacity(0)
    }
}

impl SampleArena {
    /// Creates an empty arena with room for `samples` offset slots.
    #[must_use]
    pub fn with_capacity(samples: usize) -> Self {
        let mut offsets = Vec::with_capacity(samples + 1);
        offsets.push(0);
        Self {
            data: Vec::new(),
            offsets,
            unsorted: 0,
        }
    }

    /// Appends one sample produced by `fill`, which writes the sample's
    /// vertices onto the arena tail (e.g. [`generate_rrr_into`]) and returns
    /// its work count. Enforces the same sorted/deduped contract as
    /// [`RrrCollection::push`]: the appended range is validated, repaired if
    /// violating, and counted.
    pub fn append_with<F>(&mut self, fill: F) -> u64
    where
        F: FnOnce(&mut Vec<Vertex>) -> u64,
    {
        let start = self.data.len();
        let work = fill(&mut self.data);
        let tail = &mut self.data[start..];
        if !tail.windows(2).all(|w| w[0] < w[1]) {
            self.unsorted += 1;
            tail.sort_unstable();
            let mut repaired = self.data.split_off(start);
            repaired.dedup();
            self.data.append(&mut repaired);
        }
        self.offsets.push(self.data.len());
        work
    }

    /// Number of samples in the arena.
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when no samples are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total vertex entries across all samples.
    #[must_use]
    pub fn total_entries(&self) -> usize {
        self.data.len()
    }

    /// The `i`-th sample's sorted vertex list.
    #[must_use]
    pub fn get(&self, i: usize) -> &[Vertex] {
        &self.data[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Reserved bytes of the arena's backing buffers.
    #[must_use]
    pub fn reserved_bytes(&self) -> usize {
        use std::mem::size_of;
        self.offsets.capacity() * size_of::<usize>() + self.data.capacity() * size_of::<Vertex>()
    }

    /// Samples that arrived unsorted and were repaired by
    /// [`SampleArena::append_with`] — merged into the destination store's
    /// `unsorted_pushes` diagnostic when arenas are appended.
    #[must_use]
    pub fn unsorted_repairs(&self) -> u64 {
        self.unsorted
    }
}

/// The compact one-direction RRR storage of the paper's optimized serial
/// implementation (IMMOPT): a flattened arena of sorted vertex lists.
///
/// *"We only store the information in one direction, where each sample in R
/// is stored as a list of vertices in the corresponding RRR set — sorted by
/// the vertex ids."* (§3.1). Contrast with [`crate::HyperGraph`].
#[derive(Clone, Debug, Default)]
pub struct RrrCollection {
    offsets: Vec<usize>,
    data: Vec<Vertex>,
    /// Samples that arrived unsorted (or with duplicates) and were repaired
    /// on insert; see [`RrrCollection::push`]. Diagnostic only — excluded
    /// from equality so repaired collections still compare by content.
    unsorted_pushes: u64,
}

impl PartialEq for RrrCollection {
    fn eq(&self, other: &Self) -> bool {
        self.offsets == other.offsets && self.data == other.data
    }
}

impl Eq for RrrCollection {}

impl RrrCollection {
    /// Creates an empty collection.
    #[must_use]
    pub fn new() -> Self {
        Self {
            offsets: vec![0],
            data: Vec::new(),
            unsorted_pushes: 0,
        }
    }

    /// Number of samples stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when no samples are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of vertex entries across all samples.
    #[must_use]
    pub fn total_entries(&self) -> usize {
        self.data.len()
    }

    /// Appends one sample. Samples must be sorted ascending with no
    /// duplicates — every downstream consumer (binary-search partition
    /// navigation, merge-style selection, bitwise cross-engine comparison)
    /// relies on that invariant, and in release builds a `debug_assert`
    /// would silently let a violation corrupt results. Instead the cheap
    /// O(len) check always runs; a violating sample is repaired
    /// (sorted + deduplicated) and counted in
    /// [`RrrCollection::unsorted_pushes`] so run reports surface the bug
    /// without poisoning the collection.
    pub fn push(&mut self, vertices: &[Vertex]) {
        if vertices.windows(2).all(|w| w[0] < w[1]) {
            self.data.extend_from_slice(vertices);
        } else {
            self.unsorted_pushes += 1;
            let mut repaired = vertices.to_vec();
            repaired.sort_unstable();
            repaired.dedup();
            self.data.extend_from_slice(&repaired);
        }
        self.offsets.push(self.data.len());
    }

    /// Number of pushed samples that violated the sorted/deduped contract
    /// and were repaired on insert. Nonzero values indicate a generator
    /// bug; the run report exports this counter.
    #[must_use]
    pub fn unsorted_pushes(&self) -> u64 {
        self.unsorted_pushes
    }

    /// The `i`-th sample's sorted vertex list.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> &[Vertex] {
        &self.data[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Iterates all samples.
    pub fn iter(&self) -> impl Iterator<Item = &[Vertex]> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Resident bytes of the sample storage — the quantity Table 2's memory
    /// columns compare between layouts. Reports *reserved capacity*, not
    /// just initialized length: a `Vec`'s growth slack is real allocated
    /// memory, and peak tracking that ignored it under-reported footprint.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.offsets.capacity() * size_of::<usize>() + self.data.capacity() * size_of::<Vertex>()
    }

    /// The raw offset array: `len() + 1` entries, `offsets[i]..offsets[i+1]`
    /// bounds sample `i` in [`RrrCollection::raw_data`]. Snapshot
    /// serialization surface (`ripples-serve`).
    #[must_use]
    pub fn raw_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The flattened vertex arena behind all samples. Snapshot
    /// serialization surface (`ripples-serve`).
    #[must_use]
    pub fn raw_data(&self) -> &[Vertex] {
        &self.data
    }

    /// Rebuilds a collection from deserialized raw parts, re-validating
    /// every structural invariant a [`RrrCollection::push`] sequence would
    /// have established: `offsets` starts at 0, is monotone, and ends at
    /// `data.len()`; every sample is strictly ascending. Returns a
    /// description naming the offending field and index on violation — the
    /// snapshot-restore path maps these onto structured errors instead of
    /// letting corrupt bytes poison selections.
    ///
    /// # Errors
    ///
    /// Any violated invariant, as human-readable text naming the field.
    pub fn from_raw_parts(offsets: Vec<usize>, data: Vec<Vertex>) -> Result<Self, String> {
        if offsets.first() != Some(&0) {
            return Err("offsets[0] must be 0".to_string());
        }
        if let Some(i) = offsets.windows(2).position(|w| w[0] > w[1]) {
            return Err(format!("offsets[{}] > offsets[{}]", i, i + 1));
        }
        if *offsets.last().expect("non-empty checked above") != data.len() {
            return Err(format!(
                "offsets[{}] = {} != data length {}",
                offsets.len() - 1,
                offsets.last().expect("non-empty"),
                data.len()
            ));
        }
        for i in 0..offsets.len() - 1 {
            let sample = &data[offsets[i]..offsets[i + 1]];
            if !sample.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("sample {i} is not strictly ascending"));
            }
        }
        Ok(Self {
            offsets,
            data,
            unsorted_pushes: 0,
        })
    }

    /// Appends the samples of `arenas`, in arena order, by parallel bulk
    /// copy at precomputed offsets — the merge step of arena-backed
    /// [`crate::sampler::sample_batch`]. Produces the exact layout that
    /// [`RrrCollection::push`]ing every sample in the same order would:
    /// callers partition a batch into per-worker arenas in index order, so
    /// the merged collection stays bitwise identical to sequential
    /// generation.
    pub fn append_arenas(&mut self, arenas: &[SampleArena]) {
        let base_data = self.data.len();
        let base_offset_slots = self.offsets.len();
        let new_entries: usize = arenas.iter().map(SampleArena::total_entries).sum();
        let new_samples: usize = arenas.iter().map(SampleArena::len).sum();
        // Destination start of each arena's data block.
        let data_starts: Vec<usize> = arenas
            .iter()
            .scan(base_data, |acc, a| {
                let start = *acc;
                *acc += a.total_entries();
                Some(start)
            })
            .collect();
        self.data.resize(base_data + new_entries, 0);
        self.offsets.resize(base_offset_slots + new_samples, 0);
        // Carve disjoint destination windows (one per arena) and fill them
        // concurrently; the vendored rayon has no mutable parallel
        // iterators, so ownership is handed out via split_at_mut.
        let mut data_rest = &mut self.data[base_data..];
        let mut offsets_rest = &mut self.offsets[base_offset_slots..];
        rayon::scope(|s| {
            for (arena, &data_start) in arenas.iter().zip(&data_starts) {
                let (data_dst, dr) = data_rest.split_at_mut(arena.total_entries());
                data_rest = dr;
                let (offsets_dst, or) = offsets_rest.split_at_mut(arena.len());
                offsets_rest = or;
                s.spawn(move |_| {
                    data_dst.copy_from_slice(&arena.data);
                    for (slot, &end) in offsets_dst.iter_mut().zip(&arena.offsets[1..]) {
                        *slot = data_start + end;
                    }
                });
            }
        });
        self.unsorted_pushes += arenas.iter().map(|a| a.unsorted).sum::<u64>();
    }

    /// The slice of sample `i` restricted to the vertex interval
    /// `[vl, vh)`, located by binary search — the partition navigation of
    /// Algorithm 4 ("vl and vh can be efficiently found using binary
    /// search").
    #[must_use]
    pub fn partition_slice(&self, i: usize, vl: Vertex, vh: Vertex) -> &[Vertex] {
        let set = self.get(i);
        let lo = set.partition_point(|&x| x < vl);
        let hi = set.partition_point(|&x| x < vh);
        &set[lo..hi]
    }
}

impl FromIterator<Vec<Vertex>> for RrrCollection {
    fn from_iter<T: IntoIterator<Item = Vec<Vertex>>>(iter: T) -> Self {
        let mut c = Self::new();
        for s in iter {
            c.push(&s);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripples_graph::GraphBuilder;
    use ripples_rng::SplitMix64;

    fn path(n: u32, p: f32) -> Graph {
        let mut b = GraphBuilder::new(n);
        for u in 0..n - 1 {
            b.add_edge(u, u + 1, p).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn certain_edges_traverse_fully() {
        // 0 -> 1 -> 2 -> 3 with p = 1: RRR(3) = {0,1,2,3}.
        let g = path(4, 1.0);
        let mut rng = SplitMix64::new(1);
        let mut scratch = RrrScratch::new(4);
        let s = generate_rrr(
            &g,
            DiffusionModel::IndependentCascade,
            3,
            &mut rng,
            &mut scratch,
        );
        assert_eq!(s.vertices, vec![0, 1, 2, 3]);
    }

    #[test]
    fn zero_edges_stop_immediately() {
        let g = path(4, 0.0);
        let mut rng = SplitMix64::new(1);
        let mut scratch = RrrScratch::new(4);
        let s = generate_rrr(
            &g,
            DiffusionModel::IndependentCascade,
            3,
            &mut rng,
            &mut scratch,
        );
        assert_eq!(s.vertices, vec![3]);
        assert_eq!(s.edges_examined, 1);
    }

    #[test]
    fn root_always_included() {
        let g = path(6, 0.5);
        let mut rng = SplitMix64::new(7);
        let mut scratch = RrrScratch::new(6);
        for root in 0..6 {
            for _ in 0..20 {
                let s = generate_rrr(
                    &g,
                    DiffusionModel::IndependentCascade,
                    root,
                    &mut rng,
                    &mut scratch,
                );
                assert!(s.vertices.binary_search(&root).is_ok());
            }
        }
    }

    #[test]
    fn output_sorted_and_deduped() {
        // Diamond so both branches reach the same ancestor.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(0, 2, 1.0).unwrap();
        b.add_edge(1, 3, 1.0).unwrap();
        b.add_edge(2, 3, 1.0).unwrap();
        let g = b.build().unwrap();
        let mut rng = SplitMix64::new(3);
        let mut scratch = RrrScratch::new(4);
        let s = generate_rrr(
            &g,
            DiffusionModel::IndependentCascade,
            3,
            &mut rng,
            &mut scratch,
        );
        assert_eq!(s.vertices, vec![0, 1, 2, 3]);
    }

    #[test]
    fn lt_walks_are_paths() {
        // Star into vertex 0: many in-neighbors, LT picks at most one.
        let mut b = GraphBuilder::new(10);
        for u in 1..10 {
            b.add_edge(u, 0, 0.1).unwrap();
        }
        let g = b.build().unwrap();
        let mut rng = SplitMix64::new(5);
        let mut scratch = RrrScratch::new(10);
        for _ in 0..50 {
            let s = generate_rrr(
                &g,
                DiffusionModel::LinearThreshold,
                0,
                &mut rng,
                &mut scratch,
            );
            assert!(s.vertices.len() <= 2, "LT grabbed {:?}", s.vertices);
        }
    }

    #[test]
    fn lt_respects_no_activation_mass() {
        // Single in-edge of weight 0.5: about half of the walks stop at the
        // root.
        let g = path(2, 0.5);
        let mut rng = SplitMix64::new(11);
        let mut scratch = RrrScratch::new(2);
        let n = 4000;
        let extended = (0..n)
            .filter(|_| {
                generate_rrr(
                    &g,
                    DiffusionModel::LinearThreshold,
                    1,
                    &mut rng,
                    &mut scratch,
                )
                .vertices
                .len()
                    == 2
            })
            .count();
        let freq = extended as f64 / f64::from(n);
        assert!((freq - 0.5).abs() < 0.05, "freq {freq}");
    }

    #[test]
    fn ic_respects_probability() {
        let g = path(2, 0.25);
        let mut rng = SplitMix64::new(13);
        let mut scratch = RrrScratch::new(2);
        let n = 8000;
        let hits = (0..n)
            .filter(|_| {
                generate_rrr(
                    &g,
                    DiffusionModel::IndependentCascade,
                    1,
                    &mut rng,
                    &mut scratch,
                )
                .vertices
                .len()
                    == 2
            })
            .count();
        let freq = hits as f64 / f64::from(n);
        assert!((freq - 0.25).abs() < 0.03, "freq {freq}");
    }

    #[test]
    fn scratch_reuse_is_clean() {
        let g = path(5, 1.0);
        let mut rng = SplitMix64::new(1);
        let mut scratch = RrrScratch::new(5);
        let a = generate_rrr(
            &g,
            DiffusionModel::IndependentCascade,
            4,
            &mut rng,
            &mut scratch,
        );
        let b = generate_rrr(
            &g,
            DiffusionModel::IndependentCascade,
            0,
            &mut rng,
            &mut scratch,
        );
        assert_eq!(a.vertices, vec![0, 1, 2, 3, 4]);
        assert_eq!(b.vertices, vec![0]);
    }

    #[test]
    fn collection_push_get_iter() {
        let mut c = RrrCollection::new();
        c.push(&[1, 3, 5]);
        c.push(&[2]);
        c.push(&[]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.total_entries(), 4);
        assert_eq!(c.get(0), &[1, 3, 5]);
        assert_eq!(c.get(2), &[] as &[Vertex]);
        let all: Vec<&[Vertex]> = c.iter().collect();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn collection_partition_slice() {
        let mut c = RrrCollection::new();
        c.push(&[1, 3, 5, 7, 9]);
        assert_eq!(c.partition_slice(0, 3, 8), &[3, 5, 7]);
        assert_eq!(c.partition_slice(0, 0, 1), &[] as &[Vertex]);
        assert_eq!(c.partition_slice(0, 9, 100), &[9]);
    }

    #[test]
    fn collection_bytes_grow() {
        let mut c = RrrCollection::new();
        let before = c.resident_bytes();
        c.push(&[1, 2, 3, 4]);
        assert!(c.resident_bytes() > before);
    }

    #[test]
    fn collection_from_iter() {
        let c: RrrCollection = vec![vec![0, 1], vec![2]].into_iter().collect();
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1), &[2]);
    }

    #[test]
    fn unsorted_push_is_repaired_and_counted() {
        // Runs identically in debug and release: the sortedness check is no
        // longer a debug_assert, so an unsorted sample can never silently
        // corrupt binary-search navigation in optimized builds.
        let mut c = RrrCollection::new();
        c.push(&[1, 3, 5]);
        c.push(&[5, 1, 3, 3]); // unsorted + duplicate
        c.push(&[2, 4]);
        assert_eq!(c.unsorted_pushes(), 1);
        assert_eq!(c.get(1), &[1, 3, 5]);
        assert_eq!(c.partition_slice(1, 2, 6), &[3, 5]);
        // Sorted pushes leave the counter untouched.
        assert_eq!(c.get(2), &[2, 4]);
        let mut clean = RrrCollection::new();
        clean.push(&[1, 3, 5]);
        clean.push(&[1, 3, 5]);
        clean.push(&[2, 4]);
        assert_eq!(clean.unsorted_pushes(), 0);
        // Equality compares content only — the diagnostic counter is not
        // part of the value.
        assert_eq!(c, clean);
    }

    #[test]
    fn generate_rrr_into_appends_to_arena_tail() {
        let g = path(4, 1.0);
        let mut scratch = RrrScratch::new(4);
        let mut arena = Vec::from([99u32]);
        let mut rng = SplitMix64::new(1);
        let work = generate_rrr_into(
            &g,
            DiffusionModel::IndependentCascade,
            3,
            &mut rng,
            &mut scratch,
            &mut arena,
        );
        // Prefix untouched, appended range sorted.
        assert_eq!(arena, vec![99, 0, 1, 2, 3]);
        let mut rng2 = SplitMix64::new(1);
        let s = generate_rrr(
            &g,
            DiffusionModel::IndependentCascade,
            3,
            &mut rng2,
            &mut scratch,
        );
        assert_eq!(s.vertices, &arena[1..]);
        assert_eq!(s.edges_examined, work);
    }

    #[test]
    fn arena_merge_matches_pushes() {
        let mut a0 = SampleArena::with_capacity(2);
        a0.append_with(|buf| {
            buf.extend_from_slice(&[1, 3, 5]);
            7
        });
        a0.append_with(|buf| {
            buf.extend_from_slice(&[2]);
            1
        });
        let mut a1 = SampleArena::default();
        a1.append_with(|_| 0); // empty sample
        a1.append_with(|buf| {
            buf.extend_from_slice(&[0, 4]);
            2
        });
        assert_eq!(a0.len(), 2);
        assert_eq!(a0.total_entries(), 4);
        assert_eq!(a0.get(0), &[1, 3, 5]);
        assert!(a1.get(0).is_empty());
        assert!(a0.reserved_bytes() > 0);

        let mut merged = RrrCollection::new();
        merged.push(&[9]); // pre-existing content must survive the merge
        merged.append_arenas(&[a0, a1]);
        let mut reference = RrrCollection::new();
        for s in [&[9][..], &[1, 3, 5], &[2], &[], &[0, 4]] {
            reference.push(s);
        }
        assert_eq!(merged, reference);
        assert_eq!(merged.unsorted_pushes(), 0);
    }

    #[test]
    fn arena_repairs_and_counts_unsorted_samples() {
        let mut a = SampleArena::default();
        a.append_with(|buf| {
            buf.extend_from_slice(&[5, 1, 3, 3]);
            0
        });
        assert_eq!(a.get(0), &[1, 3, 5]);
        let mut c = RrrCollection::new();
        c.append_arenas(&[a]);
        assert_eq!(c.unsorted_pushes(), 1);
        assert_eq!(c.get(0), &[1, 3, 5]);
    }

    #[test]
    fn scratch_epoch_wraparound_hard_clears() {
        // After 2^32 samples the epoch counter wraps; begin() must
        // hard-clear the visited marks so stale entries written at epoch
        // u32::MAX cannot masquerade as "visited" under the restarted
        // epoch. We fast-forward the counter instead of generating 2^32
        // samples.
        let g = path(5, 1.0);
        let mut rng = SplitMix64::new(1);
        let mut scratch = RrrScratch::new(5);
        scratch.epoch = u32::MAX - 1;
        let a = generate_rrr(
            &g,
            DiffusionModel::IndependentCascade,
            4,
            &mut rng,
            &mut scratch,
        );
        assert_eq!(a.vertices, vec![0, 1, 2, 3, 4]);
        assert_eq!(scratch.epoch, u32::MAX);
        // Next sample wraps: every mark in visited_epoch equals u32::MAX,
        // and without the hard clear epoch would restart at 0/1 and either
        // treat everything as visited or never terminate cleanly.
        let b = generate_rrr(
            &g,
            DiffusionModel::IndependentCascade,
            4,
            &mut rng,
            &mut scratch,
        );
        assert_eq!(scratch.epoch, 1, "wrap must reset to a fresh epoch");
        assert_eq!(
            b.vertices,
            vec![0, 1, 2, 3, 4],
            "stale marks leaked through the wrap"
        );
        let c = generate_rrr(
            &g,
            DiffusionModel::IndependentCascade,
            0,
            &mut rng,
            &mut scratch,
        );
        assert_eq!(c.vertices, vec![0]);
    }
}
