//! Combined bottom-k reachability sketches (Cohen et al., CIKM 2014).
//!
//! The paper's related work credits per-node "combined reachability
//! sketches" with up to two-orders-of-magnitude speedups for influence
//! *estimation*. The construction: materialize `ℓ` live-edge instances of
//! the IC graph; give every `(vertex, instance)` pair an independent uniform
//! rank; each vertex's sketch keeps the `k` smallest ranks among all pairs
//! it can reach across all instances. The classic bottom-k estimator then
//! turns a sketch into a reachability-mass estimate, and
//! `E[|I({v})|] ≈ mass / ℓ`.
//!
//! This implements the oracle (building sketches + influence estimation +
//! top-influencer ranking). It trades the RIS/IMM approximation guarantee
//! for an any-vertex oracle — the opposite corner of the design space from
//! the paper's contribution, which is precisely why it is worth having as a
//! comparator.

use crate::model::DiffusionModel;
use ripples_graph::{Graph, Vertex};
use ripples_rng::SplitMix64;
use std::collections::VecDeque;

/// Per-vertex combined bottom-k sketch over `instances` live-edge samples.
#[derive(Clone, Debug)]
pub struct ReachabilitySketches {
    /// Sketch size `k`.
    k: usize,
    /// Number of live-edge instances `ℓ`.
    instances: u32,
    /// Per-vertex sorted ascending rank lists (each at most `k` long).
    sketches: Vec<Vec<f64>>,
}

impl ReachabilitySketches {
    /// Builds sketches for every vertex under the Independent Cascade model.
    ///
    /// Work is O(ℓ · (n log n + k·m)) — Cohen's rank-order construction:
    /// within an instance, process `(rank, vertex)` pairs in increasing rank
    /// and flood each *backwards* over the instance's live edges, stopping
    /// at vertices whose sketch is already full (their k smallest ranks
    /// cannot change later).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `instances == 0`, or the model is not IC (the
    /// sketch construction materializes independent live edges, which the
    /// LT model does not have).
    #[must_use]
    pub fn build(
        graph: &Graph,
        model: DiffusionModel,
        instances: u32,
        k: usize,
        seed: u64,
    ) -> Self {
        assert!(k > 0, "sketch size must be positive");
        assert!(instances > 0, "need at least one instance");
        assert_eq!(
            model,
            DiffusionModel::IndependentCascade,
            "combined reachability sketches are defined for IC live-edge graphs"
        );
        let n = graph.num_vertices() as usize;
        let mut sketches: Vec<Vec<f64>> = vec![Vec::with_capacity(k); n];
        let mut queue: VecDeque<Vertex> = VecDeque::new();
        let mut merged: Vec<f64> = Vec::with_capacity(2 * k);

        for inst in 0..instances {
            // Instance-local bottom-k sketches; pruning on fullness is only
            // valid within one instance's rank order, so each instance
            // floods into a fresh store and merges at the end.
            let mut inst_sketches: Vec<Vec<f64>> = vec![Vec::with_capacity(k); n];
            // Materialize this instance's live edges, stored *reversed*
            // (sketch propagation walks from a vertex to everything that
            // can reach it).
            let mut rev_adj: Vec<Vec<Vertex>> = vec![Vec::new(); n];
            let mut edge_rng = SplitMix64::for_stream(seed ^ 0x05E7_C0DE, u64::from(inst));
            for u in 0..graph.num_vertices() {
                for (v, p) in graph.out_edges(u) {
                    if edge_rng.unit_f64() < f64::from(p) {
                        rev_adj[v as usize].push(u);
                    }
                }
            }
            // Independent uniform rank per (vertex, instance).
            let mut order: Vec<(f64, Vertex)> = (0..graph.num_vertices())
                .map(|v| {
                    let mut r = SplitMix64::for_stream(
                        seed ^ 0x05E7_C0DF,
                        (u64::from(inst) << 32) | u64::from(v),
                    );
                    (r.unit_f64(), v)
                })
                .collect();
            order.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("ranks are finite"));

            // Flood ranks in increasing order; a full sketch prunes.
            let mut visited_epoch = vec![u32::MAX; n];
            for (epoch, &(rank, v)) in order.iter().enumerate() {
                let epoch = epoch as u32;
                queue.clear();
                if inst_sketches[v as usize].len() < k {
                    inst_sketches[v as usize].push(rank);
                    visited_epoch[v as usize] = epoch;
                    queue.push_back(v);
                }
                while let Some(x) = queue.pop_front() {
                    for &u in &rev_adj[x as usize] {
                        let ui = u as usize;
                        if visited_epoch[ui] == epoch || inst_sketches[ui].len() >= k {
                            continue;
                        }
                        visited_epoch[ui] = epoch;
                        inst_sketches[ui].push(rank);
                        queue.push_back(u);
                    }
                }
            }
            // Merge: keep the k smallest ranks across instances. Both lists
            // are already ascending (flood order is ascending in rank).
            for (global, inst) in sketches.iter_mut().zip(inst_sketches) {
                merged.clear();
                let (mut a, mut b) = (0usize, 0usize);
                while merged.len() < k && (a < global.len() || b < inst.len()) {
                    let take_a = b >= inst.len() || (a < global.len() && global[a] <= inst[b]);
                    if take_a {
                        merged.push(global[a]);
                        a += 1;
                    } else {
                        merged.push(inst[b]);
                        b += 1;
                    }
                }
                global.clear();
                global.extend_from_slice(&merged);
            }
        }
        Self {
            k,
            instances,
            sketches,
        }
    }

    /// Bottom-k estimate of `E[|I({v})|]` for a single seed.
    ///
    /// With fewer than `k` ranks the count is exact (`|sketch| / ℓ`);
    /// otherwise the standard estimator `(k − 1) / τ` applies, where `τ` is
    /// the k-th smallest rank.
    #[must_use]
    pub fn estimate_influence(&self, v: Vertex) -> f64 {
        let sketch = &self.sketches[v as usize];
        let mass = if sketch.len() < self.k {
            sketch.len() as f64
        } else {
            let tau = sketch[self.k - 1];
            (self.k as f64 - 1.0) / tau
        };
        mass / f64::from(self.instances)
    }

    /// All vertices ranked by descending estimated influence (ties by id).
    #[must_use]
    pub fn ranking(&self) -> Vec<Vertex> {
        let scores: Vec<f64> = (0..self.sketches.len() as u32)
            .map(|v| self.estimate_influence(v))
            .collect();
        let mut order: Vec<Vertex> = (0..self.sketches.len() as Vertex).collect();
        order.sort_by(|&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .expect("finite scores")
                .then(a.cmp(&b))
        });
        order
    }

    /// Resident bytes of the sketch store.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.sketches
            .iter()
            .map(|s| size_of::<Vec<f64>>() + s.capacity() * size_of::<f64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::estimate_spread;
    use ripples_graph::generators::barabasi_albert;
    use ripples_graph::{GraphBuilder, WeightModel};
    use ripples_rng::StreamFactory;

    #[test]
    fn deterministic_path_estimates_exactly() {
        // p = 1 chain: influence of vertex i is n − i; with k > n the
        // sketch holds every reachable rank and the estimate is exact.
        let mut b = GraphBuilder::new(6);
        for u in 0..5 {
            b.add_edge(u, u + 1, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let sk = ReachabilitySketches::build(&g, DiffusionModel::IndependentCascade, 4, 32, 7);
        for v in 0..6u32 {
            let expect = f64::from(6 - v);
            let got = sk.estimate_influence(v);
            assert!((got - expect).abs() < 1e-9, "vertex {v}: {got} vs {expect}");
        }
    }

    #[test]
    fn zero_probability_graph_gives_one() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.0).unwrap();
        let g = b.build().unwrap();
        let sk = ReachabilitySketches::build(&g, DiffusionModel::IndependentCascade, 8, 16, 3);
        for v in 0..4 {
            assert!((sk.estimate_influence(v) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn estimates_track_monte_carlo() {
        let g = barabasi_albert(300, 3, WeightModel::WeightedCascade, false, 5);
        let sk = ReachabilitySketches::build(&g, DiffusionModel::IndependentCascade, 64, 48, 11);
        let factory = StreamFactory::new(99);
        // Compare on a spread of vertices: hub, mid, leaf.
        let mut worst_ratio: f64 = 1.0;
        for &v in &[0u32, 5, 50, 150, 299] {
            let mc = estimate_spread(
                &g,
                DiffusionModel::IndependentCascade,
                &[v],
                2_000,
                &factory,
            );
            let est = sk.estimate_influence(v);
            let ratio = est / mc.max(1e-9);
            worst_ratio = worst_ratio.max(ratio.max(1.0 / ratio));
        }
        // Bottom-k is a stochastic estimator (relative std ≈ 1/√(k−2) ≈
        // 15% here); accept a generous per-vertex band and require that no
        // estimate is wildly off.
        assert!(
            worst_ratio < 2.0,
            "sketch estimates off by {worst_ratio}x from Monte-Carlo"
        );
    }

    #[test]
    fn ranking_prefers_hubs() {
        let g = barabasi_albert(400, 3, WeightModel::WeightedCascade, false, 8);
        let sk = ReachabilitySketches::build(&g, DiffusionModel::IndependentCascade, 32, 16, 2);
        let top = sk.ranking()[0];
        // The top sketch pick should be a genuinely high-spread vertex.
        let factory = StreamFactory::new(7);
        let top_spread = estimate_spread(
            &g,
            DiffusionModel::IndependentCascade,
            &[top],
            1_000,
            &factory,
        );
        let median_spread = estimate_spread(
            &g,
            DiffusionModel::IndependentCascade,
            &[200],
            1_000,
            &factory,
        );
        assert!(
            top_spread > median_spread,
            "top pick {top} spreads {top_spread} ≤ arbitrary vertex {median_spread}"
        );
    }

    #[test]
    #[should_panic(expected = "IC live-edge")]
    fn rejects_lt() {
        let g = GraphBuilder::new(2).build().unwrap();
        let _ = ReachabilitySketches::build(&g, DiffusionModel::LinearThreshold, 2, 2, 1);
    }

    #[test]
    #[should_panic(expected = "sketch size")]
    fn rejects_zero_k() {
        let g = GraphBuilder::new(2).build().unwrap();
        let _ = ReachabilitySketches::build(&g, DiffusionModel::IndependentCascade, 2, 0, 1);
    }
}
