//! The two network diffusion models of Kempe et al. supported by the paper.

use std::fmt;

/// A network diffusion model (paper Table 1: `IC` / `LT`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DiffusionModel {
    /// Independent Cascade: when `u` activates, it gets one independent
    /// chance to activate each inactive out-neighbor `v`, succeeding with
    /// probability `p(u→v)`.
    IndependentCascade,
    /// Linear Threshold: each vertex draws a uniform threshold once; it
    /// activates when the summed weight of its active in-neighbors reaches
    /// the threshold. Requires in-weights summing to at most 1 (see
    /// `GraphBuilder::normalize_for_lt` / `WeightModel::WeightedCascade`).
    LinearThreshold,
}

impl DiffusionModel {
    /// Short lowercase tag used in CLI flags and report rows.
    #[must_use]
    pub const fn tag(self) -> &'static str {
        match self {
            DiffusionModel::IndependentCascade => "ic",
            DiffusionModel::LinearThreshold => "lt",
        }
    }

    /// Parses the tag produced by [`DiffusionModel::tag`].
    #[must_use]
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag.to_ascii_lowercase().as_str() {
            "ic" => Some(DiffusionModel::IndependentCascade),
            "lt" => Some(DiffusionModel::LinearThreshold),
            _ => None,
        }
    }
}

impl fmt::Display for DiffusionModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DiffusionModel::IndependentCascade => "IC",
            DiffusionModel::LinearThreshold => "LT",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_roundtrip() {
        for m in [
            DiffusionModel::IndependentCascade,
            DiffusionModel::LinearThreshold,
        ] {
            assert_eq!(DiffusionModel::from_tag(m.tag()), Some(m));
        }
        assert_eq!(
            DiffusionModel::from_tag("IC"),
            Some(DiffusionModel::IndependentCascade)
        );
        assert_eq!(DiffusionModel::from_tag("bogus"), None);
    }

    #[test]
    fn display() {
        assert_eq!(DiffusionModel::IndependentCascade.to_string(), "IC");
        assert_eq!(DiffusionModel::LinearThreshold.to_string(), "LT");
    }
}
